"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_parses_machine_arguments(self):
        args = build_parser().parse_args(
            ["run", "redis", "--size-kb", "64", "--freq", "2.8",
             "--core", "inorder", "--length", "500"])
        assert args.workload == "redis"
        assert args.size_kb == 64
        assert args.core == "inorder"

    def test_rejects_unknown_workload(self, capsys):
        # Validated in the handler, not by argparse choices, so that
        # rtrace:<path> trace tokens stay accepted; still a usage error.
        assert main(["run", "doom"]) == 2
        assert "doom" in capsys.readouterr().err

    def test_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "redis", "--design", "magic"])


class TestCommands:
    def test_workloads_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "redis" in out and "gups" in out

    def test_table3_prints_paper_values(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "128KB" in out and "42" in out

    def test_run_text_output(self, capsys):
        assert main(["run", "astar", "--length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "runtime_cycles" in out
        assert "tft_hit_rate" in out

    def test_run_json_output(self, capsys):
        assert main(["run", "astar", "--length", "2000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "astar"
        assert payload["runtime_cycles"] > 0

    def test_compare_reports_improvements(self, capsys):
        assert main(["compare", "redis", "--size-kb", "64",
                     "--length", "4000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "runtime_improvement_pct" in payload
        assert payload["candidate"]["workload"] == "redis"

    def test_sweep_over_selected_workloads(self, capsys):
        assert main(["sweep", "--workloads", "astar", "omnet",
                     "--length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "astar" in out and "omnet" in out

    def test_compare_against_pipt_baseline(self, capsys):
        assert main(["compare", "astar", "--baseline", "pipt",
                     "--length", "2000"]) == 0
        assert "vs pipt" in capsys.readouterr().out


class TestLintCommand:
    def test_lint_clean_file(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_reports_findings_as_json(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(a_cycles, b_ns):\n    return a_cycles + b_ns\n")
        assert main(["lint", "--json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "simlint"
        assert payload["findings"][0]["rule"] == "SL004"

    def test_lint_select_passes_through(self, tmp_path, capsys):
        path = tmp_path / "dirty.py"
        path.write_text("def f(a_cycles, b_ns):\n    return a_cycles + b_ns\n")
        assert main(["lint", "--select", "SL005", str(path)]) == 0
        capsys.readouterr()


class TestSanitizeFlag:
    def test_sanitize_flag_reaches_config(self):
        from repro.cli import _config_from_args
        args = build_parser().parse_args(
            ["run", "redis", "--sanitize", "--length", "500"])
        assert _config_from_args(args).sanitize is True
        args = build_parser().parse_args(["run", "redis", "--length", "500"])
        assert _config_from_args(args).sanitize is False

    def test_run_green_under_sanitizer(self, capsys):
        assert main(["run", "astar", "--length", "2000", "--sanitize"]) == 0
        assert "runtime_cycles" in capsys.readouterr().out


class TestDoctorCommand:
    def _journal(self, tmp_path, name="j.jsonl"):
        path = tmp_path / name
        assert main(["sweep", "--workloads", "gups", "--length", "2000",
                     "--journal", str(path)]) == 0
        return path

    def test_doctor_healthy_journal(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        capsys.readouterr()
        assert main(["doctor", str(path)]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_doctor_reports_corruption_then_repairs(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:40] + "XGARBAGEX" + lines[1][49:]
        path.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["doctor", str(path)]) == 1
        captured = capsys.readouterr()
        assert "corrupt record" in captured.out
        assert "--repair" in captured.err
        assert main(["doctor", "--repair", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out and "quarantined" in out
        assert (tmp_path / "j.jsonl.quarantine").exists()
        # the repaired journal resumes cleanly
        assert main(["resume", str(path)]) == 0

    def test_doctor_json_output(self, tmp_path, capsys):
        path = self._journal(tmp_path)
        capsys.readouterr()
        assert main(["doctor", "--json", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "journal"
        assert payload["healthy"] is True

    def test_doctor_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSupervisionFlags:
    def test_sweep_parses_chaos_and_watchdog_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--jobs", "2", "--chaos", "worker-kill@1",
             "--chaos", "journal-torn@0:40", "--hung-after", "5",
             "--max-rss-mb", "512", "--min-free-mb", "64"])
        assert args.chaos == ["worker-kill@1", "journal-torn@0:40"]
        assert args.hung_after == 5.0
        assert args.max_rss_mb == 512.0
        assert args.min_free_mb == 64.0

    def test_policy_built_unless_no_supervise(self):
        from repro.cli import _policy_from_args
        args = build_parser().parse_args(["sweep", "--jobs", "2"])
        policy = _policy_from_args(args)
        assert policy is not None and policy.hung_after_s == 30.0
        args = build_parser().parse_args(
            ["sweep", "--jobs", "2", "--no-supervise"])
        assert _policy_from_args(args) is None

    def test_bad_chaos_spec_is_usage_error(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "gups", "--length", "2000",
                     "--jobs", "2", "--chaos", "bogus@1",
                     "--journal", str(tmp_path / "j.jsonl")]) == 2
        assert "unknown host fault kind" in capsys.readouterr().err

    def test_chaos_worker_kill_sweep_self_heals(self, tmp_path, capsys):
        journal = tmp_path / "kill.jsonl"
        assert main(["sweep", "--workloads", "gups", "--length", "2000",
                     "--jobs", "2", "--retries", "2",
                     "--chaos", "worker-kill@0",
                     "--journal", str(journal)]) == 0
        capsys.readouterr()

    def test_chaos_enospc_pauses_with_exit_4(self, tmp_path, capsys):
        journal = tmp_path / "pause.jsonl"
        assert main(["sweep", "--workloads", "gups", "--length", "2000",
                     "--jobs", "2", "--chaos", "journal-enospc@1",
                     "--journal", str(journal)]) == 4
        captured = capsys.readouterr()
        assert "PAUSED" in captured.err
        assert "resume" in captured.err
        # the paused journal resumes to completion
        assert main(["resume", str(journal), "--jobs", "2"]) == 0


class TestUsageErrors:
    """Bad invocations must exit 2 with a usage message, not a traceback."""

    def test_sweep_resume_without_journal_is_usage_error(self, capsys):
        assert main(["sweep", "--workloads", "gups", "--length", "1000",
                     "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume needs a journal" in err
        assert "repro resume PATH" in err

    def test_bad_inject_spec_is_usage_error(self, tmp_path, capsys):
        assert main(["sweep", "--workloads", "gups", "--length", "1000",
                     "--inject", "gamma-ray@7",
                     "--journal", str(tmp_path / "j.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_doctor_on_directory_is_usage_error(self, tmp_path, capsys):
        assert main(["doctor", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_resume_on_directory_is_usage_error(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestServeParser:
    def test_serve_parses_service_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "8123", "--jobs", "4",
             "--max-pending", "16", "--quota-capacity", "32",
             "--quota-refill", "8", "--spool", "pool",
             "--cache-capacity", "512", "--timeout", "45",
             "--retries", "2", "--deadline", "120",
             "--chaos", "worker-kill@0"])
        assert args.port == 8123
        assert args.jobs == 4
        assert args.max_pending == 16
        assert args.quota_capacity == 32.0
        assert args.quota_refill == 8.0
        assert args.spool == "pool"
        assert args.cache_capacity == 512
        assert args.deadline == 120.0
        assert args.chaos == ["worker-kill@0"]

    def test_bench_parses_serve_flag(self):
        args = build_parser().parse_args(["bench", "--quick", "--serve"])
        assert args.serve is True
        assert build_parser().parse_args(["bench"]).serve is False


class TestSampledCommands:
    def test_sampled_run_json_carries_sampling_block(self, capsys):
        assert main(["run", "gups", "--length", "8000", "--sampled",
                     "--interval-size", "400", "--max-clusters", "4",
                     "--warmup", "100", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        block = payload["sampling"]
        assert block["sampled"] is True
        assert block["exact"] is False
        assert 0.0 < block["coverage"] < 1.0
        assert set(block["error_bounds"]) == {
            "l1_miss_rate", "tlb_miss_rate", "runtime_cycles",
            "energy_total_nj"}

    def test_sampled_run_text_output(self, capsys):
        assert main(["run", "gups", "--length", "8000", "--sampled",
                     "--interval-size", "400", "--max-clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "sampled" in out

    def test_sampled_refuses_fault_injection(self, capsys):
        assert main(["run", "gups", "--length", "4000", "--sampled",
                     "--inject", "tft-false-positive@2000"]) == 2
        err = capsys.readouterr().err
        assert "--sampled" in err and "--inject" in err
        assert "valid choices" in err

    def test_sampled_refuses_exact_checkpoint_restore(self, tmp_path,
                                                      capsys):
        source = tmp_path / "exact.ckpt"
        assert main(["run", "gups", "--length", "3000",
                     "--checkpoint", str(source),
                     "--checkpoint-every", "1000"]) == 0
        capsys.readouterr()
        assert main(["run", "gups", "--length", "3000", "--sampled",
                     "--from-checkpoint", str(source)]) == 2
        err = capsys.readouterr().err
        assert "--from-checkpoint" in err and "valid choices" in err

    def test_sampled_refuses_checkpoint_writing(self, tmp_path, capsys):
        assert main(["run", "gups", "--length", "3000", "--sampled",
                     "--checkpoint", str(tmp_path / "out.ckpt")]) == 2
        err = capsys.readouterr().err
        assert "--checkpoint" in err and "valid choices" in err

    def test_tuning_flags_require_sampled(self, capsys):
        assert main(["run", "gups", "--length", "3000",
                     "--interval-size", "500"]) == 2
        err = capsys.readouterr().err
        assert "--interval-size" in err and "--sampled" in err

    def test_sweep_refuses_sampled_fault_injection(self, capsys):
        assert main(["sweep", "--workloads", "gups", "--length", "3000",
                     "--sampled", "--inject", "energy-skew@100"]) == 2
        err = capsys.readouterr().err
        assert "--sampled" in err and "--inject" in err
        assert "valid choices" in err

    def test_sampled_sweep_journal_and_resume(self, tmp_path, capsys):
        journal = tmp_path / "sampled.jsonl"
        assert main(["sweep", "--workloads", "gups", "--length", "8000",
                     "--sampled", "--interval-size", "400",
                     "--max-clusters", "4", "--journal",
                     str(journal)]) == 0
        capsys.readouterr()
        header = json.loads(journal.read_text().splitlines()[0])
        assert header["sampling"]["interval_size"] == 400
        # resume reconstructs the plan from the header: all reused
        assert main(["resume", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "reused" in out
