"""Tests for SystemConfig (paper Tables II/III wiring)."""

import pytest

from repro.core.insertion import InsertionPolicy
from repro.energy.sram import SRAMModel
from repro.sim.config import TABLE2_PARAMETERS, SystemConfig


class TestValidation:
    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(l1_design="fully-magic")

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(core="vliw")

    def test_unknown_coherence_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(coherence="token")


class TestDerived:
    def test_l1_ways_from_vipt_constraint(self):
        assert SystemConfig(l1_size_kb=32).l1_ways == 8
        assert SystemConfig(l1_size_kb=64).l1_ways == 16
        assert SystemConfig(l1_size_kb=128).l1_ways == 32

    def test_timing_uses_table3_for_published_points(self):
        config = SystemConfig(l1_size_kb=128, frequency_ghz=4.0)
        timing = config.l1_timing()
        assert timing.base_hit_cycles == 42
        assert timing.super_hit_cycles == 4

    def test_timing_falls_back_to_sram_model(self):
        config = SystemConfig(l1_size_kb=32, frequency_ghz=2.0)
        timing = config.l1_timing(SRAMModel())
        assert timing.base_hit_cycles >= timing.super_hit_cycles >= 1

    def test_pipt_hit_cycles_reasonable(self):
        config = SystemConfig(l1_design="pipt", l1_size_kb=128, pipt_ways=4,
                              frequency_ghz=1.33)
        cycles = config.pipt_hit_cycles()
        # A 4-way 128KB PIPT array is far faster than the 14-cycle 32-way
        # VIPT baseline (the Fig. 14 trade-off).
        assert 1 <= cycles < 14

    def test_tlb_shapes_match_table2(self):
        atom = SystemConfig(core="inorder").tlb_shape()
        assert atom["l1_4kb_entries"] == 64
        assert atom["l1_2mb_entries"] == 32
        assert atom["l2_entries"] == 512
        sandybridge = SystemConfig(core="ooo").tlb_shape()
        assert sandybridge["l1_4kb_entries"] == 128
        assert sandybridge["l1_2mb_entries"] == 16
        assert sandybridge["l2_entries"] == 0

    def test_with_design_clones(self):
        config = SystemConfig(l1_design="seesaw", l1_size_kb=64)
        clone = config.with_design("vipt")
        assert clone.l1_design == "vipt"
        assert clone.l1_size_kb == 64
        assert config.l1_design == "seesaw"

    def test_describe_mentions_key_facts(self):
        text = SystemConfig(l1_size_kb=64, memhog_fraction=0.3).describe()
        assert "64KB" in text and "30%" in text


class TestTable2Record:
    def test_table2_sections(self):
        assert set(TABLE2_PARAMETERS) == {"cpu_models", "memory_system",
                                          "system"}
        assert "24MB" in TABLE2_PARAMETERS["memory_system"]["llc"]
        assert "51ns" in TABLE2_PARAMETERS["memory_system"]["dram"]
