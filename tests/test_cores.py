"""Tests for the in-order and out-of-order core timing models."""

import pytest

from repro.cpu.core import CoreModel
from repro.cpu.inorder import InOrderCore
from repro.cpu.ooo import OutOfOrderCore


class TestCommon:
    def test_advance_charges_frontend_cycles(self):
        core = OutOfOrderCore(issue_width=4)
        core.advance(gap_instructions=7)   # 8 instructions total
        assert core.stats.instructions == 8
        assert core.stats.cycles == pytest.approx(2.0)
        assert core.stats.memory_references == 1

    def test_charge_cycles(self):
        core = InOrderCore()
        core.charge_cycles(175)
        assert core.stats.cycles == 175

    def test_runtime_rounding(self):
        core = OutOfOrderCore(issue_width=4)
        core.advance(0)                     # 0.25 cycles
        assert isinstance(core.runtime_cycles, int)

    def test_runtime_seconds(self):
        core = InOrderCore(frequency_ghz=1.0)
        core.charge_cycles(1_000_000_000)
        assert core.runtime_seconds() == pytest.approx(1.0)

    def test_ipc(self):
        core = InOrderCore(issue_width=2)
        core.advance(3)
        assert core.stats.ipc == pytest.approx(2.0)

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            CoreModel().memory_stall(True, 2)


class TestLatencyExposure:
    def test_inorder_exposes_more_than_ooo(self):
        inorder = InOrderCore()
        ooo = OutOfOrderCore()
        for latency in (1, 2, 5, 14):
            assert (inorder.memory_stall(True, latency)
                    > ooo.memory_stall(True, latency))

    def test_hit_exposure_grows_sublinearly(self):
        """Doubling the L1 latency must not double the stall: pipelined
        L1s + OoO windows hide proportionally more of longer latencies."""
        core = OutOfOrderCore()
        s2 = core.memory_stall(True, 2)
        s14 = core.memory_stall(True, 14)
        assert s14 > s2
        assert s14 / s2 < 14 / 2

    def test_one_cycle_saving_visible_in_stall(self):
        """The regression that motivated float cycle accounting: a 2->1
        cycle L1 improvement must reduce the charged stall."""
        for core in (OutOfOrderCore(), InOrderCore()):
            assert core.memory_stall(True, 1) < core.memory_stall(True, 2)

    def test_misses_overlap_by_mlp(self):
        core = OutOfOrderCore(miss_mlp=2.0)
        assert core.memory_stall(False, 40) == pytest.approx(20.0)

    def test_inorder_misses_barely_overlap(self):
        core = InOrderCore(miss_overlap_factor=1.3)
        assert core.memory_stall(False, 39) == pytest.approx(30.0)

    def test_account_memory_accumulates(self):
        core = InOrderCore()
        stall = core.account_memory(False, 40)
        assert core.stats.stall_cycles == stall
        assert core.stats.cycles == stall
