"""Determinism regression tests.

The reproducibility contract: the same ``(SystemConfig, trace)`` pair run
twice yields a *bit-identical* ``SimulationResult.to_dict()`` — every
counter and every energy float — and the same ``(spec, length, seed)``
always rebuilds the identical trace.  The shared-RNG seam
(``build_trace(..., rng=...)``, ``make_policy(..., rng=...)``) threads one
``numpy`` generator through every stochastic draw for callers that manage
a single experiment-wide stream.
"""

import numpy as np
import pytest

from repro.cache.basic import SetAssociativeCache
from repro.cache.replacement import RandomPolicy, make_policy
from repro.sim.config import SystemConfig
from repro.sim.system import SystemSimulator
from repro.workloads.generators import UniformRandomGenerator, ZipfGenerator
from repro.workloads.suite import build_trace, get_workload


def _trace_tuple(trace):
    return (trace.name, trace.addresses, trace.writes, trace.cores,
            trace.gaps)


class TestTraceDeterminism:
    def test_same_seed_same_trace(self):
        a = build_trace(get_workload("redis"), length=4000, seed=7)
        b = build_trace(get_workload("redis"), length=4000, seed=7)
        assert _trace_tuple(a) == _trace_tuple(b)

    def test_multithreaded_trace_deterministic(self):
        a = build_trace(get_workload("cann"), length=4000, seed=3)
        b = build_trace(get_workload("cann"), length=4000, seed=3)
        assert _trace_tuple(a) == _trace_tuple(b)

    def test_different_seed_differs(self):
        a = build_trace(get_workload("redis"), length=4000, seed=7)
        b = build_trace(get_workload("redis"), length=4000, seed=8)
        assert _trace_tuple(a) != _trace_tuple(b)

    def test_shared_rng_mode_deterministic(self):
        a = build_trace(get_workload("cann"), length=4000,
                        rng=np.random.default_rng(11))
        b = build_trace(get_workload("cann"), length=4000,
                        rng=np.random.default_rng(11))
        assert _trace_tuple(a) == _trace_tuple(b)


class TestSharedRngSeam:
    def test_generators_share_one_stream(self):
        shared = np.random.default_rng(5)
        g1 = UniformRandomGenerator(256, rng=shared)
        g2 = UniformRandomGenerator(256, rng=shared)
        assert g1.rng is shared and g2.rng is shared
        first = g1.generate(16)
        replay = np.random.default_rng(5).integers(0, 256, size=16,
                                                   dtype=np.int64)
        assert np.array_equal(first, replay)
        # g2 continues the shared stream rather than replaying it.
        assert not np.array_equal(g2.generate(16), replay)

    def test_seeded_default_unchanged_by_rng_param(self):
        a = ZipfGenerator(512, s=1.0, seed=9).generate(64)
        b = ZipfGenerator(512, s=1.0, seed=9, rng=None).generate(64)
        assert np.array_equal(a, b)

    def test_random_policy_shared_rng(self):
        shared = np.random.default_rng(9)
        p1 = make_policy("random", 8, rng=shared)
        p2 = make_policy("random", 8, rng=shared)
        observed = ([p1.victim(range(8)) for _ in range(8)]
                    + [p2.victim(range(8)) for _ in range(8)])
        expected_rng = np.random.default_rng(9)
        expected = [int(expected_rng.integers(0, 8)) for _ in range(16)]
        assert observed == expected

    def test_random_policy_per_seed_default(self):
        a = RandomPolicy(8, seed=4)
        b = RandomPolicy(8, seed=4)
        assert ([a.victim(range(8)) for _ in range(10)]
                == [b.victim(range(8)) for _ in range(10)])

    def test_cache_threads_shared_rng_to_policies(self):
        shared = np.random.default_rng(2)
        cache = SetAssociativeCache(4096, 4, replacement="random",
                                    rng=shared)
        policy = cache.set_at(0).policy
        assert isinstance(policy, RandomPolicy)
        assert policy._rng is shared
        assert cache.set_at(1).policy._rng is shared


class TestEndToEndDeterminism:
    @pytest.mark.parametrize("design", ["seesaw", "vipt", "pipt", "vivt"])
    def test_full_result_dict_identical(self, design):
        trace = build_trace(get_workload("redis"), length=5000, seed=13)
        config = SystemConfig(l1_design=design, seed=13)
        r1 = SystemSimulator(config, trace).run().to_dict()
        r2 = SystemSimulator(config, trace).run().to_dict()
        assert r1 == r2

    def test_rebuilt_trace_gives_identical_result(self):
        runs = []
        for _ in range(2):
            trace = build_trace(get_workload("cann"), length=4000, seed=2)
            result = SystemSimulator(SystemConfig(seed=2), trace).run()
            runs.append(result.to_dict())
        assert runs[0] == runs[1]


class TestSampledDeterminism:
    """The sampled lane inherits the full reproducibility contract:
    same (config, trace, plan) -> bit-identical result, in-process and
    across independent interpreter processes."""

    PLAN_KWARGS = dict(interval_size=400, max_clusters=4, warmup=100)

    @pytest.mark.parametrize("design", ["seesaw", "vipt", "pipt", "vivt"])
    def test_sampled_result_dict_identical(self, design):
        from repro.sampling import SamplingPlan
        from repro.sampling.runner import simulate_sampled
        plan = SamplingPlan(**self.PLAN_KWARGS)
        trace = build_trace(get_workload("redis"), length=5000, seed=13)
        config = SystemConfig(l1_design=design, seed=13)
        r1 = simulate_sampled(config, trace, plan).to_dict()
        r2 = simulate_sampled(config, trace, plan).to_dict()
        assert r1["sampling"]["exact"] is False
        assert r1 == r2

    def test_sampled_run_bit_identical_across_processes(self):
        """Two fresh interpreters produce byte-identical --sampled JSON —
        no hidden dependence on hash seeds, import order, or PID."""
        import json
        import os
        import subprocess
        import sys

        import repro

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        def run(hash_seed):
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "run", "gups",
                 "--length", "5000", "--sampled",
                 "--interval-size", "400", "--max-clusters", "4",
                 "--warmup", "100", "--json"],
                capture_output=True, env=env, timeout=120)
            assert proc.returncode == 0, proc.stderr.decode()
            return proc.stdout

        first = run("1")
        second = run("2")  # different hash seed must not matter
        assert first == second
        payload = json.loads(first)
        assert payload["sampling"]["sampled"] is True
