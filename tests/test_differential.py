"""Differential tests: independent paths must agree exactly.

The hot-path optimizations (raw-tuple translate/access, inlined probes,
the parallel dispatcher) all promise *bit-identical* behaviour to the
reference implementations they shadow.  These tests hold the promise by
running both paths on the same inputs and demanding equality:

* serial ``resilient_sweep`` vs ``parallel_sweep`` at ``jobs`` 1/2/4 —
  identical journal bytes and identical result payloads;
* VIPT vs PIPT L1s of the same geometry — the VIPT constraint (index
  bits inside the page offset) makes virtual and physical indexing
  coincide, so hit/miss streams must match;
* sanitizer armed vs disarmed — checking invariants must never change
  the simulation's outcome.
"""

import json

import pytest

from repro.cache.pipt import PiptL1Cache
from repro.cache.vipt import L1Timing, ViptL1Cache
from repro.mem.address import PageSize
from repro.perf.parallel import parallel_sweep
from repro.resilience.runner import resilient_sweep
from repro.sim.config import SystemConfig
from repro.sim.experiment import run_workload
from repro.workloads.suite import build_trace, get_workload

WORKLOADS = ["gups", "redis"]
LENGTH = 4_000


def _sweep_serial(tmp_path, name):
    path = tmp_path / name
    report = resilient_sweep(SystemConfig(seed=42), WORKLOADS,
                             trace_length=LENGTH, journal_path=path)
    return report, path.read_bytes()


def _sweep_parallel(tmp_path, name, jobs):
    path = tmp_path / name
    report = parallel_sweep(SystemConfig(seed=42), WORKLOADS,
                            trace_length=LENGTH, journal_path=path,
                            jobs=jobs)
    return report, path.read_bytes()


def _payloads(report):
    return {(workload, design): result.to_dict()
            for workload, by_design in report.results.items()
            for design, result in by_design.items()}


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_journal_bytes_identical(self, tmp_path, jobs):
        """A parallel sweep journals the exact bytes a serial sweep does,
        for any worker count."""
        _, serial_bytes = _sweep_serial(tmp_path, "serial.jsonl")
        _, parallel_bytes = _sweep_parallel(tmp_path, f"par{jobs}.jsonl",
                                            jobs)
        assert parallel_bytes == serial_bytes

    def test_result_payloads_identical(self, tmp_path):
        serial, _ = _sweep_serial(tmp_path, "serial.jsonl")
        parallel, _ = _sweep_parallel(tmp_path, "par.jsonl", 2)
        assert _payloads(parallel) == _payloads(serial)
        assert parallel.ok and serial.ok
        assert parallel.executed == serial.executed

    def test_parallel_journal_resumes_under_serial_runner(self, tmp_path):
        """A journal written by the parallel engine is a valid resume
        source for the serial engine (and vice versa by byte-identity)."""
        _, path_bytes = _sweep_parallel(tmp_path, "cross.jsonl", 2)
        report = resilient_sweep(SystemConfig(seed=42), WORKLOADS,
                                 trace_length=LENGTH,
                                 journal_path=tmp_path / "cross.jsonl",
                                 resume=True)
        assert report.reused == len(WORKLOADS) * 2
        assert report.executed == 0
        assert (tmp_path / "cross.jsonl").read_bytes() == path_bytes

    def test_journal_records_in_enumeration_order(self, tmp_path):
        _, raw = _sweep_parallel(tmp_path, "order.jsonl", 4)
        records = [json.loads(line) for line in raw.splitlines()]
        cells = [(r["workload"], r["design"]) for r in records
                 if r["type"] == "done"]
        expected = [(workload, design) for workload in WORKLOADS
                    for design in ("vipt", "seesaw")]
        assert cells == expected


class TestViptPiptAgreement:
    def test_hit_miss_streams_match_for_same_geometry(self):
        """With index bits inside the page offset, VIPT indexing equals
        physical indexing: a PIPT cache of identical sets/ways must see
        the same hit/miss stream on the same (VA, PA) sequence."""
        timing = L1Timing(base_hit_cycles=2, super_hit_cycles=1)
        vipt = ViptL1Cache(32 * 1024, timing)
        pipt = PiptL1Cache(32 * 1024, ways=vipt.ways, hit_cycles=2)
        assert pipt.store.num_sets == vipt.store.num_sets
        trace = build_trace(get_workload("redis"), 3_000, seed=7)
        page = PageSize.BASE_4KB
        for reference, va in enumerate(trace.addresses):
            # Identity-with-offset translation keeps PA distinct from VA
            # while preserving the page-offset bits VIPT indexes with.
            pa = (va + (7 << page.offset_bits)) & ((1 << 48) - 1)
            is_write = trace.writes[reference]
            vipt_hit = vipt.access(va, pa, page, is_write).hit
            pipt_hit = pipt.access(va, pa, page, is_write).hit
            assert vipt_hit == pipt_hit, f"diverged at reference {reference}"
            if not vipt_hit:
                vipt.fill(pa, page, dirty=is_write)
                pipt.fill(pa, page, dirty=is_write)
        assert vipt.stats.hits == pipt.stats.hits
        assert vipt.stats.misses == pipt.stats.misses


class TestSanitizerTransparency:
    @pytest.mark.parametrize("design", ["vipt", "seesaw"])
    def test_sanitizer_does_not_change_results(self, design):
        """Arming the runtime sanitizer must be observationally neutral:
        every counter and energy figure matches the unsanitized run."""
        plain = run_workload(
            SystemConfig(l1_design=design, seed=42, sanitize=False),
            "redis", trace_length=LENGTH, seed=42)
        checked = run_workload(
            SystemConfig(l1_design=design, seed=42, sanitize=True),
            "redis", trace_length=LENGTH, seed=42)
        assert checked.to_dict() == plain.to_dict()


class TestSampledLaneEquivalence:
    """The sampled lane honours the same serial/parallel bit-identity
    contract as the exact lane, and stays in its own digest namespace."""

    # At LENGTH=4000 the default plan would degenerate to exact
    # (7 intervals <= K=10); this plan genuinely samples: 10 intervals,
    # 4 representatives.
    PLAN_KWARGS = dict(interval_size=400, max_clusters=4, warmup=100)

    def _plan(self):
        from repro.sampling import SamplingPlan
        return SamplingPlan(**self.PLAN_KWARGS)

    def _serial(self, tmp_path, name):
        path = tmp_path / name
        report = resilient_sweep(SystemConfig(seed=42), WORKLOADS,
                                 trace_length=LENGTH, journal_path=path,
                                 sampling_plan=self._plan())
        return report, path.read_bytes()

    def _parallel(self, tmp_path, name, jobs):
        path = tmp_path / name
        report = parallel_sweep(SystemConfig(seed=42), WORKLOADS,
                                trace_length=LENGTH, journal_path=path,
                                jobs=jobs, sampling_plan=self._plan())
        return report, path.read_bytes()

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_sampled_journal_bytes_identical(self, tmp_path, jobs):
        _, serial_bytes = self._serial(tmp_path, "serial.jsonl")
        _, parallel_bytes = self._parallel(tmp_path, f"par{jobs}.jsonl",
                                           jobs)
        assert parallel_bytes == serial_bytes

    def test_sampled_result_payloads_identical(self, tmp_path):
        serial, _ = self._serial(tmp_path, "serial.jsonl")
        parallel, _ = self._parallel(tmp_path, "par.jsonl", 2)
        assert _payloads(parallel) == _payloads(serial)
        for payload in _payloads(serial).values():
            assert payload["sampling"]["sampled"] is True
            assert payload["sampling"]["exact"] is False

    def test_sampled_and_exact_lanes_never_share_digests(self, tmp_path):
        """Per-cell digests are lane-separated (the shared header digest
        names the base config and is the same on purpose)."""
        _, sampled_bytes = self._serial(tmp_path, "sampled.jsonl")
        _, exact_bytes = _sweep_serial(tmp_path, "exact.jsonl")

        def cell_digests(raw):
            records = [json.loads(line) for line in raw.splitlines()]
            return {r["config_digest"] for r in records
                    if r["type"] == "done"}

        assert cell_digests(sampled_bytes)
        assert cell_digests(sampled_bytes).isdisjoint(
            cell_digests(exact_bytes))

    def test_sampled_journal_resumes_under_serial_runner(self, tmp_path):
        _, path_bytes = self._parallel(tmp_path, "cross.jsonl", 2)
        report = resilient_sweep(SystemConfig(seed=42), WORKLOADS,
                                 trace_length=LENGTH,
                                 journal_path=tmp_path / "cross.jsonl",
                                 resume=True, sampling_plan=self._plan())
        assert report.reused == len(WORKLOADS) * 2
        assert report.executed == 0
        assert (tmp_path / "cross.jsonl").read_bytes() == path_bytes
