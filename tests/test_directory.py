"""Tests for directory and snoopy coherence fabrics."""

import pytest

from repro.cache.vipt import L1Timing, ViptL1Cache
from repro.coherence.directory import Directory
from repro.coherence.snoop import SnoopyBus
from repro.core.seesaw import SeesawL1Cache
from repro.mem.address import PageSize

TIMING = L1Timing(base_hit_cycles=2, super_hit_cycles=1)


def make_l1s(n=4, seesaw=False):
    if seesaw:
        return [SeesawL1Cache(32 * 1024, TIMING, seed=i) for i in range(n)]
    return [ViptL1Cache(32 * 1024, TIMING, seed=i) for i in range(n)]


class TestDirectoryReads:
    def test_read_registers_sharer(self):
        directory = Directory(make_l1s())
        directory.cpu_read(0, 0x1000)
        assert directory.sharer_count(0x1000) == 1

    def test_read_of_dirty_line_forwards_from_owner(self):
        caches = make_l1s()
        directory = Directory(caches)
        caches[1].fill(0x1000, PageSize.BASE_4KB, dirty=True)
        directory.cpu_write(1, 0x1000)
        forwarded = directory.cpu_read(0, 0x1000)
        assert forwarded
        assert directory.stats.owner_forwards == 1

    def test_read_without_owner_does_not_probe(self):
        directory = Directory(make_l1s())
        directory.cpu_read(0, 0x1000)
        directory.cpu_read(2, 0x1000)
        assert directory.stats.probes_sent == 0


class TestDirectoryWrites:
    def test_write_invalidates_other_sharers(self):
        caches = make_l1s()
        directory = Directory(caches)
        for core in (0, 1, 2):
            caches[core].fill(0x1000, PageSize.BASE_4KB)
            directory.cpu_read(core, 0x1000)
        probes = directory.cpu_write(3, 0x1000)
        assert probes == 3
        for core in (0, 1, 2):
            assert not caches[core].coherence_probe(0x1000).present
        assert directory.sharer_count(0x1000) == 1

    def test_write_collects_dirty_writeback(self):
        caches = make_l1s()
        directory = Directory(caches)
        caches[0].fill(0x1000, PageSize.BASE_4KB, dirty=True)
        directory.cpu_write(0, 0x1000)
        directory.cpu_write(1, 0x1000)
        assert directory.stats.writebacks_collected == 1

    def test_write_by_sole_owner_sends_no_probes(self):
        directory = Directory(make_l1s())
        directory.cpu_write(0, 0x1000)
        assert directory.cpu_write(0, 0x1000) == 0


class TestDirectoryEvictions:
    def test_eviction_removes_sharer(self):
        directory = Directory(make_l1s())
        directory.cpu_read(0, 0x1000)
        directory.evict(0, 0x1000)
        assert directory.sharer_count(0x1000) == 0

    def test_eviction_of_unknown_line_is_noop(self):
        directory = Directory(make_l1s())
        directory.evict(0, 0x5000)  # must not raise


class TestDirectoryProbeListener:
    def test_listener_sees_ways_probed(self):
        caches = make_l1s(seesaw=True)
        directory = Directory(caches)
        events = []
        directory.register_probe_listener(
            lambda core, ways: events.append((core, ways)))
        caches[0].fill(0x1000, PageSize.BASE_4KB)
        directory.cpu_read(0, 0x1000)
        directory.cpu_write(1, 0x1000)
        # SEESAW single-partition coherence: 4 ways per probe, not 8.
        assert events == [(0, 4)]

    def test_seesaw_vs_vipt_probe_width(self):
        for seesaw, expected in ((True, 4), (False, 8)):
            caches = make_l1s(seesaw=seesaw)
            directory = Directory(caches)
            widths = []
            directory.register_probe_listener(
                lambda core, ways: widths.append(ways))
            directory.cpu_read(0, 0x1000)
            directory.cpu_write(1, 0x1000)
            assert widths == [expected]


class TestSnoopyBus:
    def test_read_broadcasts_to_all_other_cores(self):
        caches = make_l1s()
        bus = SnoopyBus(caches)
        caches[2].fill(0x1000, PageSize.BASE_4KB)
        hit = bus.cpu_read(0, 0x1000)
        assert hit
        assert bus.stats.probes_sent == 3

    def test_write_invalidates_everywhere(self):
        caches = make_l1s()
        bus = SnoopyBus(caches)
        for core in (1, 2, 3):
            caches[core].fill(0x1000, PageSize.BASE_4KB)
        bus.cpu_write(0, 0x1000)
        for core in (1, 2, 3):
            assert not caches[core].coherence_probe(0x1000).present

    def test_snoopy_sends_more_probes_than_directory(self):
        """The paper's §VI-B observation: snooping multiplies coherence
        lookups, growing SEESAW's energy advantage by 2-5%."""
        def probes_for(fabric_cls):
            caches = make_l1s()
            fabric = fabric_cls(caches)
            for i in range(10):
                fabric.cpu_read(0, 0x1000 + i * 64)
                fabric.cpu_write(1, 0x1000 + i * 64)
            return fabric.stats.probes_sent

        assert probes_for(SnoopyBus) > probes_for(Directory)

    def test_dirty_writeback_collected(self):
        caches = make_l1s()
        bus = SnoopyBus(caches)
        caches[1].fill(0x1000, PageSize.BASE_4KB, dirty=True)
        bus.cpu_write(0, 0x1000)
        assert bus.stats.writebacks_collected == 1

    def test_evict_is_silent(self):
        bus = SnoopyBus(make_l1s())
        bus.evict(0, 0x1000)
        assert bus.stats.broadcasts == 0
