"""Tests for the experiment drivers."""

import pytest

from repro.sim.config import SystemConfig
from repro.sim.experiment import (
    compare_designs,
    energy_improvement,
    improvement_percent,
    min_avg_max,
    run_workload,
    runtime_improvement,
    summarize_improvements,
    sweep,
)
from repro.workloads.suite import build_trace, get_workload


class TestHelpers:
    def test_improvement_percent(self):
        assert improvement_percent(100, 90) == pytest.approx(10.0)
        assert improvement_percent(100, 110) == pytest.approx(-10.0)
        assert improvement_percent(0, 50) == 0.0

    def test_min_avg_max(self):
        assert min_avg_max([1.0, 2.0, 6.0]) == (1.0, 3.0, 6.0)
        assert min_avg_max([]) == (0.0, 0.0, 0.0)


class TestRuns:
    def test_run_workload(self):
        result = run_workload(SystemConfig(), "astar", trace_length=3000)
        assert result.workload == "astar"

    def test_compare_designs_same_trace(self):
        trace = build_trace(get_workload("astar"), length=3000, seed=5)
        results = compare_designs(SystemConfig(), trace)
        assert set(results) == {"vipt", "seesaw"}
        assert (results["vipt"].memory_references
                == results["seesaw"].memory_references)

    def test_runtime_and_energy_improvements(self):
        trace = build_trace(get_workload("redis"), length=5000, seed=5)
        results = compare_designs(SystemConfig(l1_size_kb=64), trace)
        assert runtime_improvement(results) > 0
        assert energy_improvement(results) > 0

    def test_sweep_and_summarize(self):
        results = sweep(SystemConfig(), ["astar", "redis"],
                        trace_length=3000)
        assert set(results) == {"astar", "redis"}
        by_runtime = summarize_improvements(results, metric="runtime")
        by_energy = summarize_improvements(results, metric="energy")
        assert set(by_runtime) == {"astar", "redis"}
        assert all(isinstance(v, float) for v in by_energy.values())

    def test_summarize_rejects_unknown_metric(self):
        results = sweep(SystemConfig(), ["astar"], trace_length=2000)
        with pytest.raises(ValueError):
            summarize_improvements(results, metric="area")

    def test_sweep_mutation_hook(self):
        seen = []

        def mutate(config, name):
            seen.append(name)
            return config

        sweep(SystemConfig(), ["astar"], trace_length=2000, mutate=mutate)
        assert seen == ["astar"]
