"""Tests for the paper's optional/extension features.

Covers the set-associative TFT (§IV-A2 "set-associative implementations
are possible"), the ASID-tagged TFT (§IV-C3's rejected-for-area variant),
the confidence-gated WP+SEESAW combination (§VI-F future work), and
runtime page churn (§IV-C2).
"""

import pytest

from repro.core.adaptive_wp import WayPredictionGate
from repro.core.tft import TranslationFilterTable
from repro.mem.address import PAGE_SIZE_2MB, PageSize
from repro.sim.config import SystemConfig
from repro.sim.system import SystemSimulator
from repro.workloads.suite import build_trace, get_workload


def region_va(region, offset=0):
    return region * PAGE_SIZE_2MB + offset


class TestSetAssociativeTFT:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            TranslationFilterTable(entries=16, ways=3)
        with pytest.raises(ValueError):
            TranslationFilterTable(entries=16, ways=0)

    def test_conflicting_regions_coexist_with_ways(self):
        """Regions 5 and 21 alias in a 16-set direct-mapped TFT but fit
        together in a 2-way set."""
        tft = TranslationFilterTable(entries=16, ways=2)
        tft.fill(region_va(5))
        tft.fill(region_va(21))
        assert tft.probe(region_va(5))
        assert tft.probe(region_va(21))

    def test_lru_within_set(self):
        tft = TranslationFilterTable(entries=16, ways=2)   # 8 sets
        tft.fill(region_va(0))
        tft.fill(region_va(8))
        tft.lookup(region_va(0))          # region 0 becomes MRU
        tft.fill(region_va(16))           # evicts LRU region 8
        assert tft.probe(region_va(0))
        assert not tft.probe(region_va(8))
        assert tft.probe(region_va(16))

    def test_fully_associative(self):
        tft = TranslationFilterTable(entries=4, ways=4)
        for region in (0, 4, 8, 12):      # all alias in direct-mapped
            tft.fill(region_va(region))
        assert tft.occupancy() == 4


class TestAsidTaggedTFT:
    def test_asid_isolation(self):
        tft = TranslationFilterTable(entries=16, asid_tags=True)
        tft.fill(region_va(3), asid=1)
        assert tft.lookup(region_va(3), asid=1)
        assert not tft.lookup(region_va(3), asid=2)

    def test_context_switch_no_flush_with_tags(self):
        tft = TranslationFilterTable(entries=16, asid_tags=True)
        tft.fill(region_va(3), asid=1)
        tft.on_context_switch()
        assert tft.probe(region_va(3), asid=1)

    def test_context_switch_flushes_without_tags(self):
        tft = TranslationFilterTable(entries=16, asid_tags=False)
        tft.fill(region_va(3))
        tft.on_context_switch()
        assert not tft.probe(region_va(3))

    def test_area_roughly_doubles_with_tags(self):
        """The paper's §IV-C3 reason for rejecting ASID tags."""
        plain = TranslationFilterTable(16).storage_bytes
        tagged = TranslationFilterTable(16, asid_tags=True).storage_bytes
        assert tagged > plain * 1.2


class TestWayPredictionGate:
    def test_predicts_while_confident(self):
        gate = WayPredictionGate(threshold=0.6)
        assert gate.should_predict()

    def test_gates_off_after_sustained_mispredictions(self):
        gate = WayPredictionGate(threshold=0.6, alpha=0.2, probe_interval=8)
        for _ in range(20):
            gate.update(False)
        suppressed = sum(0 if gate.should_predict() else 1
                         for _ in range(16))
        assert suppressed >= 10

    def test_periodic_shadow_probe_reopens_gate(self):
        gate = WayPredictionGate(threshold=0.6, alpha=0.3, probe_interval=4)
        for _ in range(20):
            gate.update(False)
        decisions = [gate.should_predict() for _ in range(12)]
        assert any(decisions)            # a probe slipped through
        # Feed correct outcomes during probes: confidence recovers.
        for _ in range(30):
            if gate.should_predict():
                gate.update(True)
        assert gate.estimate > 0.6

    def test_gate_fraction_accounting(self):
        gate = WayPredictionGate()
        gate.should_predict()
        assert gate.gate_fraction == 0.0


class TestAdaptiveWpEndToEnd:
    def test_gated_wp_never_much_worse_than_plain_seesaw(self):
        """The §VI-F scheme: on a poor-locality workload, the gate turns
        mispredicting way prediction off, recovering SEESAW-alone
        behaviour."""
        trace = build_trace(get_workload("olio"), length=8000, seed=5)
        plain = SystemSimulator(
            SystemConfig(l1_design="seesaw"), trace).run()
        gated = SystemSimulator(
            SystemConfig(l1_design="seesaw", way_prediction=True,
                         adaptive_way_prediction=True), trace).run()
        ungated = SystemSimulator(
            SystemConfig(l1_design="seesaw", way_prediction=True), trace
        ).run()
        assert gated.runtime_cycles <= ungated.runtime_cycles * 1.005
        assert gated.runtime_cycles <= plain.runtime_cycles * 1.02


class TestPageChurn:
    def test_splinter_churn_runs_and_invalidates_tft(self):
        trace = build_trace(get_workload("redis"), length=6000, seed=5)
        config = SystemConfig(l1_design="seesaw", splinter_interval=700)
        sim = SystemSimulator(config, trace)
        sim.run(warmup_fraction=0.0)
        assert sim.manager.stats.superpages_splintered > 0
        assert sum(l1.tft.stats.invalidations for l1 in sim.l1s) > 0

    def test_promotion_churn_triggers_sweeps(self):
        trace = build_trace(get_workload("redis"), length=6000, seed=5)
        config = SystemConfig(l1_design="seesaw", splinter_interval=500,
                              promote_interval=900, memory_mb=256)
        sim = SystemSimulator(config, trace)
        sim.run(warmup_fraction=0.0)
        assert sim.manager.stats.superpages_promoted > 0
        assert sum(l1.seesaw_stats.promotion_sweeps for l1 in sim.l1s) > 0

    def test_churn_correctness_translations_survive(self):
        """After arbitrary splinter/promote churn every address still
        translates and the cache contents stay coherent with memory."""
        trace = build_trace(get_workload("astar"), length=6000, seed=5)
        config = SystemConfig(l1_design="seesaw", splinter_interval=400,
                              promote_interval=600, memory_mb=256)
        sim = SystemSimulator(config, trace)
        result = sim.run(warmup_fraction=0.0)
        assert result.runtime_cycles > 0
        table = sim.manager.page_table(asid=0)
        for address in trace.addresses[:200]:
            assert table.is_mapped(address)

    def test_seesaw_sweep_cost_is_minimal(self):
        """Paper §IV-C2: the SEESAW-specific cost of a promotion — the
        150-200-cycle cache sweep riding the TLB-shootdown window — is
        negligible relative to runtime.  (The *OS-side* costs of page
        churn — page copies, cold LLC lines, 4KB TLB pressure after a
        splinter — are real and large, but identical for the baseline.)"""
        trace = build_trace(get_workload("redis"), length=8000, seed=5)
        config = SystemConfig(l1_design="seesaw", memory_mb=256,
                              splinter_interval=1500, promote_interval=2000)
        sim = SystemSimulator(config, trace)
        result = sim.run()
        sweep_cycles = sum(l1.seesaw_stats.promotion_sweep_cycles
                           for l1 in sim.l1s)
        assert sim.manager.stats.superpages_promoted > 0
        assert sweep_cycles < 0.02 * result.runtime_cycles


class TestPromoteFaultIn:
    def test_fault_in_missing_promotes_partial_region(self, memory_manager):
        va = 0x4000_0000
        memory_manager.thp_policy = \
            __import__("repro.mem.os_policy", fromlist=["THPPolicy"]).THPPolicy.NEVER
        # Touch only half the region's pages.
        memory_manager.touch_range(va, PAGE_SIZE_2MB // 2)
        assert memory_manager.promote_region(va) is None
        mapping = memory_manager.promote_region(va, fault_in_missing=True)
        assert mapping is not None
        assert mapping.page_size is PageSize.SUPER_2MB
