"""Tests for the memhog fragmentation model."""

import pytest

from repro.mem.fragmentation import Memhog, fragment_memory
from repro.mem.physical import ORDER_2MB, PhysicalMemory

MB = 1024 * 1024


class TestMemhog:
    def test_fraction_validation(self):
        memory = PhysicalMemory(16 * MB)
        with pytest.raises(ValueError):
            Memhog(memory, 0.99)
        with pytest.raises(ValueError):
            Memhog(memory, -0.1)

    def test_pins_roughly_the_target_fraction(self):
        memory = PhysicalMemory(64 * MB)
        fragment_memory(memory, 0.5, seed=1)
        pinned = 1 - memory.free_bytes / memory.total_bytes
        assert 0.4 <= pinned <= 0.6

    def test_zero_fraction_leaves_memory_usable(self):
        memory = PhysicalMemory(64 * MB)
        fragment_memory(memory, 0.0, seed=1)
        # Everything freed back; most memory should be 2MB-capable again.
        blocks = memory.allocator.available_blocks_at_or_above(ORDER_2MB)
        assert blocks >= 24  # of 32 possible

    def test_superpage_availability_decays_with_fraction(self):
        """The Fig. 3 mechanism: more pinned memory, fewer 2MB blocks."""
        available = []
        for fraction in (0.1, 0.4, 0.7, 0.9):
            memory = PhysicalMemory(64 * MB)
            fragment_memory(memory, fraction, seed=7)
            available.append(
                memory.allocator.available_blocks_at_or_above(ORDER_2MB))
        assert available == sorted(available, reverse=True)
        assert available[0] > 2 * max(available[-1], 1)

    def test_free_space_is_fragmented_not_contiguous(self):
        memory = PhysicalMemory(64 * MB)
        fragment_memory(memory, 0.6, seed=2)
        free_bytes = memory.free_bytes
        usable_2mb = (memory.allocator.available_blocks_at_or_above(ORDER_2MB)
                      * 2 * MB)
        # A substantial share of the free space must be in sub-2MB holes.
        assert usable_2mb < free_bytes

    def test_release_restores_memory(self):
        memory = PhysicalMemory(32 * MB)
        hog = fragment_memory(memory, 0.7, seed=3)
        hog.release()
        assert memory.free_bytes == memory.total_bytes
        assert memory.allocator.available_blocks_at_or_above(ORDER_2MB) == 16

    def test_deterministic_for_fixed_seed(self):
        def run(seed):
            memory = PhysicalMemory(32 * MB)
            fragment_memory(memory, 0.5, seed=seed)
            return (memory.free_bytes,
                    memory.allocator.available_blocks_at_or_above(ORDER_2MB))

        assert run(11) == run(11)

    def test_held_regions_reported(self):
        memory = PhysicalMemory(32 * MB)
        hog = fragment_memory(memory, 0.5, seed=5)
        assert hog.held_regions > 0
        hog.release()
        assert hog.held_regions == 0
