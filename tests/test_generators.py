"""Tests for the synthetic access-pattern generators."""

import numpy as np
import pytest

from repro.workloads.generators import (
    MixedGenerator,
    PointerChaseGenerator,
    StreamGenerator,
    UniformRandomGenerator,
    ZipfGenerator,
)

N_LINES = 4096


class TestCommon:
    @pytest.mark.parametrize("cls", [ZipfGenerator, StreamGenerator,
                                     PointerChaseGenerator,
                                     UniformRandomGenerator])
    def test_outputs_in_range(self, cls):
        gen = cls(N_LINES, seed=1)
        out = gen.generate(2000)
        assert len(out) == 2000
        assert out.min() >= 0 and out.max() < N_LINES

    @pytest.mark.parametrize("cls", [ZipfGenerator, StreamGenerator,
                                     PointerChaseGenerator,
                                     UniformRandomGenerator])
    def test_deterministic_per_seed(self, cls):
        a = cls(N_LINES, seed=9).generate(500)
        b = cls(N_LINES, seed=9).generate(500)
        assert np.array_equal(a, b)

    def test_rejects_empty_footprint(self):
        with pytest.raises(ValueError):
            StreamGenerator(0)


class TestZipf:
    def test_skew_concentrates_accesses(self):
        gen = ZipfGenerator(N_LINES, s=1.2, seed=2)
        out = gen.generate(20000)
        pages = out // 64
        unique, counts = np.unique(pages, return_counts=True)
        top_share = np.sort(counts)[::-1][:8].sum() / counts.sum()
        assert top_share > 0.4   # hot 8 pages dominate

    def test_low_skew_spreads_accesses(self):
        hot = ZipfGenerator(N_LINES, s=1.4, seed=2).generate(20000)
        cold = ZipfGenerator(N_LINES, s=0.4, seed=2).generate(20000)
        assert len(np.unique(cold)) > len(np.unique(hot))

    def test_hot_pages_are_contiguous_low_pages(self):
        """Hot ranks map to low page numbers — the region-level locality
        that keeps the TFT effective (see generators.py)."""
        out = ZipfGenerator(N_LINES, s=1.2, seed=3).generate(20000)
        pages = out // 64
        unique, counts = np.unique(pages, return_counts=True)
        hottest = unique[np.argmax(counts)]
        assert hottest < 8


class TestStream:
    def test_sequential_by_stride(self):
        gen = StreamGenerator(N_LINES, stride=1, seed=0)
        out = gen.generate(100)
        diffs = np.diff(out) % N_LINES
        assert (diffs == 1).all()

    def test_custom_stride(self):
        gen = StreamGenerator(N_LINES, stride=4, seed=0)
        out = gen.generate(50)
        assert (np.diff(out) % N_LINES == 4).all()

    def test_wraps_at_footprint(self):
        gen = StreamGenerator(64, stride=1, seed=0)
        out = gen.generate(200)
        assert out.max() < 64

    def test_stride_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamGenerator(64, stride=0)

    def test_position_persists_across_calls(self):
        gen = StreamGenerator(N_LINES, stride=1, seed=0)
        first = gen.generate(10)
        second = gen.generate(10)
        assert second[0] == (first[-1] + 1) % N_LINES


class TestPointerChase:
    def test_visits_whole_footprint_once_per_cycle(self):
        gen = PointerChaseGenerator(256, seed=4)
        out = gen.generate(256)
        assert len(np.unique(out)) == 256   # a permutation cycle

    def test_successive_accesses_far_apart(self):
        gen = PointerChaseGenerator(N_LINES, seed=4)
        out = gen.generate(1000)
        jumps = np.abs(np.diff(out))
        assert np.median(jumps) > N_LINES / 16   # no spatial locality


class TestMixed:
    def test_requires_components(self):
        with pytest.raises(ValueError):
            MixedGenerator(N_LINES, [])

    def test_mixture_draws_from_all_components(self):
        stream = StreamGenerator(N_LINES, seed=1)
        uniform = UniformRandomGenerator(N_LINES, seed=2)
        gen = MixedGenerator(N_LINES, [(stream, 0.5), (uniform, 0.5)],
                             chunk=16, seed=3)
        out = gen.generate(2000)
        assert len(out) == 2000
        # Mixture should look neither purely sequential nor purely random.
        diffs = np.diff(out)
        assert (diffs == 1).sum() > 100
        assert (np.abs(diffs) > 100).sum() > 100
