"""Golden regression tests: frozen end-to-end simulation results.

Each fixture under ``tests/golden/`` is the full
``SimulationResult.to_dict()`` of one (design, workload) cell at a fixed
seed and trace length, committed before the hot-path rewrite.  The tests
assert the simulator still produces *bit-identical* results — every
counter, every float — so performance work (memoized address math,
slotted cache lines, batched stat updates, the parallel sweep engine)
can never silently change behaviour.

Regenerate deliberately with::

    pytest tests/test_golden.py --update-golden

and review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import SystemConfig
from repro.sim.experiment import run_workload

GOLDEN_DIR = Path(__file__).parent / "golden"

#: fixed scale of every golden cell — changing either invalidates the lot.
TRACE_LENGTH = 6_000
SEED = 42

DESIGNS = ("vipt", "pipt", "vivt", "seesaw")
WORKLOADS = ("redis", "gups")
CASES = [(design, workload) for design in DESIGNS for workload in WORKLOADS]


def golden_path(design: str, workload: str) -> Path:
    return GOLDEN_DIR / f"{design}-{workload}.json"


def run_cell(design: str, workload: str) -> dict:
    """Simulate one golden cell and return its JSON-normalized payload."""
    result = run_workload(SystemConfig(l1_design=design, seed=SEED),
                          workload, trace_length=TRACE_LENGTH, seed=SEED)
    # Round-trip through JSON so the comparison sees exactly what the
    # fixture file stores (floats survive via repr round-tripping).
    return json.loads(json.dumps(result.to_dict(), sort_keys=True))


def write_fixture(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


@pytest.mark.parametrize("design,workload", CASES,
                         ids=[f"{d}-{w}" for d, w in CASES])
def test_golden_cell(design, workload, update_golden):
    payload = run_cell(design, workload)
    path = golden_path(design, workload)
    if update_golden:
        write_fixture(path, payload)
        return
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"`pytest tests/test_golden.py --update-golden`")
    expected = json.loads(path.read_text(encoding="utf-8"))
    assert payload == expected, (
        f"({design}, {workload}) diverged from its golden fixture — if the "
        f"change is intentional, regenerate with --update-golden and commit "
        f"the diff")


def test_golden_fixtures_complete():
    """Every expected fixture file exists (no silently skipped designs)."""
    missing = [str(golden_path(d, w)) for d, w in CASES
               if not golden_path(d, w).exists()]
    assert not missing, f"missing golden fixtures: {missing}"
