"""Crash-safe real-trace ingestion: parsers, canonical ``.rtrace``
round-trips, the byte-level corruption matrix, chaos determinism, the
SIGKILL-and-resume drill, and the rtrace doctor.

The headline contracts under test:

* any byte-truncation or garbage injection on the input yields a typed
  ``IngestError`` or a quarantined record — never a hang, a crash, or a
  silently wrong trace;
* an ingest SIGKILLed at an arbitrary instant, resumed by re-running
  the same command, publishes a ``.rtrace`` byte-identical to an
  uninterrupted run;
* an ingested trace's digest is accepted end-to-end (run, sweep
  journals, serve validation, campaigns).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.ingest import (
    RECORD_SIZE,
    ChampSimParser,
    IngestReport,
    LackeyParser,
    MalformedRecord,
    cached_rtrace,
    default_output,
    ingest_trace,
    inspect_rtrace,
    is_rtrace_token,
    load_rtrace,
    read_header,
    rtrace_path,
    sidecar_paths,
    sniff_format,
    trace_token,
    write_rtrace,
)
from repro.resilience import chaos, doctor
from repro.resilience.errors import (
    EXIT_PAUSED,
    IngestError,
    IngestPausedError,
    JournalError,
    RtraceError,
    TraceCorruptionError,
    TraceFormatError,
)

LACKEY = (
    "==1234== Lackey output\n"
    "I  04000000,3\n"
    " L 00001000,8\n"
    " S 00001008,4\n"
    "I  04000003,1\n"
    "I  04000004,2\n"
    " M 00002000,8\n"
    "\n"
)

CHAMPSIM = (
    "# comment line\n"
    "0x1000 R\n"
    "2000 W 1\n"
    "3000 LOAD\n"
    "0x4000 STORE 2\n"
)


def lackey_input(lines: int) -> str:
    """A larger synthetic lackey capture with a deterministic shape."""
    out = ["==99== big capture"]
    for index in range(lines):
        out.append(f"I  0400{index % 97:04x},3")
        if index % 2 == 0:
            out.append(f" L {0x10000 + 64 * (index % 512):08x},8")
        else:
            out.append(f" S {0x40000 + 64 * (index % 256):08x},4")
    return "\n".join(out) + "\n"


def cli_env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------- parsers


class TestParsers:
    def test_lackey_parses_loads_stores_and_modify_pairs(self):
        parser = LackeyParser()
        records = []
        for line in LACKEY.splitlines():
            records.extend(parser.parse_line(line))
        # L, S, then the M expands to a load+store pair.
        assert [record[1] for record in records] == [False, True, False, True]
        assert records[0][0] == 0x1000
        assert records[3][0] == 0x2000
        # The M's load carries the instruction gap; its store pairs at 0.
        assert records[2][3] > 0
        assert records[3][3] == 0

    def test_lackey_malformed_raises_typed(self):
        with pytest.raises(MalformedRecord):
            list(LackeyParser().parse_line(" L zzzz,8"))

    def test_champsim_aliases_and_cores(self):
        parser = ChampSimParser()
        records = []
        for line in CHAMPSIM.splitlines():
            records.extend(parser.parse_line(line))
        assert [r[0] for r in records] == [0x1000, 2000 and 0x2000, 0x3000,
                                           0x4000]
        assert [r[1] for r in records] == [False, True, False, True]
        assert [r[2] for r in records] == [0, 1, 0, 2]

    def test_champsim_rejects_wide_core(self):
        with pytest.raises(MalformedRecord):
            list(ChampSimParser().parse_line("1000 R 300"))

    def test_sniff_picks_each_format(self):
        assert sniff_format(LACKEY, source="x") == "lackey"
        assert sniff_format(CHAMPSIM, source="x") == "champsim"

    def test_sniff_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            sniff_format("what even is this\nnot a trace\n", source="x")


# ------------------------------------------------------------- round trip


class TestRoundTrip:
    def test_lackey_round_trip_preserves_every_record(self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(LACKEY)
        report = ingest_trace(source)
        trace = load_rtrace(report.output)
        parser = LackeyParser()
        direct = []
        for line in LACKEY.splitlines():
            direct.extend(parser.parse_line(line))
        assert trace.addresses == [r[0] for r in direct]
        assert trace.writes == [r[1] for r in direct]
        assert trace.gaps == [min(r[3], (1 << 32) - 1) for r in direct]
        assert report.records == len(direct)

    def test_header_digest_matches_checkpoint_digest(self, tmp_path):
        from repro.resilience.checkpoint import trace_digest
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        report = ingest_trace(source)
        header = read_header(report.output)
        assert header["trace_digest"] == report.trace_digest
        assert trace_digest(load_rtrace(report.output)) \
            == header["trace_digest"]

    def test_reingest_is_idempotent_and_byte_stable(self, tmp_path):
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        first = ingest_trace(source)
        blob = Path(first.output).read_bytes()
        second = ingest_trace(source)
        assert second.already_complete
        assert Path(second.output).read_bytes() == blob

    def test_checkpoint_cadence_does_not_change_bytes(self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(300))
        coarse = ingest_trace(source, output=tmp_path / "coarse.rtrace",
                              name="t")
        fine = ingest_trace(source, output=tmp_path / "fine.rtrace",
                            name="t", checkpoint_every=1)
        assert (tmp_path / "coarse.rtrace").read_bytes() \
            == (tmp_path / "fine.rtrace").read_bytes()
        assert coarse.trace_digest == fine.trace_digest

    def test_sidecars_cleaned_after_success(self, tmp_path):
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        report = ingest_trace(source)
        for side in sidecar_paths(report.output).values():
            assert not side.exists()

    def test_quarantine_documents_offset_and_reason(self, tmp_path):
        source = tmp_path / "app.champsim"
        text = "0x1000 R\nnot a record\n0x2000 W\n"
        source.write_text(text)
        report = ingest_trace(source)
        assert report.bad_records == 1
        assert report.exit_code == 1
        entry = json.loads(Path(report.quarantine).read_text())
        assert entry["offset"] == text.index("not a record")
        assert entry["raw"] == "not a record"
        assert entry["reason"]


# ------------------------------------------------------ corruption matrix


class TestCorruptionMatrix:
    def test_every_input_truncation_is_typed_or_quarantined(self, tmp_path):
        full = CHAMPSIM.encode()
        for cut in range(len(full)):
            workdir = tmp_path / f"cut{cut}"
            workdir.mkdir()
            source = workdir / "t.champsim"
            source.write_bytes(full[:cut])
            try:
                report = ingest_trace(source, fmt="champsim")
            except IngestError:
                continue  # typed refusal is an allowed outcome
            assert isinstance(report, IngestReport)
            # whatever decoded must load back verbatim
            load_rtrace(report.output)

    def test_every_rtrace_truncation_is_refused_and_doctorable(
            self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(LACKEY)
        report = ingest_trace(source)
        full = Path(report.output).read_bytes()
        for cut in range(len(full)):
            torn = tmp_path / f"cut{cut}" / "t.rtrace"
            torn.parent.mkdir()
            torn.write_bytes(full[:cut])
            with pytest.raises(RtraceError):
                load_rtrace(torn)
            diagnosis = doctor.diagnose(torn)
            assert diagnosis.kind == "rtrace"
            assert not diagnosis.healthy
            repaired = doctor.repair(torn)
            assert repaired.repaired
            if torn.exists():
                # rebuilt in place from whole records: must load clean
                trace = load_rtrace(torn)
                assert len(trace.addresses) \
                    == inspect_rtrace(torn)["whole_records"]
            else:
                # quarantined aside checkpoint-style
                assert Path(repaired.quarantine_path).exists()

    def test_in_place_flip_fails_checksum_not_repairable_in_place(
            self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(LACKEY)
        report = ingest_trace(source)
        blob = bytearray(Path(report.output).read_bytes())
        blob[-3] ^= 0xFF
        bad = tmp_path / "bad.rtrace"
        bad.write_bytes(bytes(blob))
        with pytest.raises(RtraceError):
            load_rtrace(bad)
        repaired = doctor.repair(bad)
        assert repaired.repaired
        assert not bad.exists()  # moved aside for a re-ingest

    def test_unsniffable_input_is_typed(self, tmp_path):
        source = tmp_path / "noise.txt"
        source.write_text("complete nonsense\nmore nonsense\n")
        with pytest.raises(TraceFormatError):
            ingest_trace(source)

    def test_strict_and_budget_are_typed(self, tmp_path):
        source = tmp_path / "app.champsim"
        source.write_text("0x1000 R\nbad\nworse\n0x2000 W\n")
        with pytest.raises(TraceCorruptionError):
            ingest_trace(source, fmt="champsim", strict=True)
        with pytest.raises(TraceCorruptionError):
            ingest_trace(source, fmt="champsim", max_bad_records=1,
                         force=True)

    def test_empty_input_is_typed(self, tmp_path):
        source = tmp_path / "empty.champsim"
        source.write_text("")
        with pytest.raises(IngestError):
            ingest_trace(source, fmt="champsim")


# ------------------------------------------------------------------ chaos


class TestChaosKinds:
    def test_truncate_input_clamps_deterministically(self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(200))
        digests = []
        for attempt in range(2):
            out = tmp_path / f"t{attempt}.rtrace"
            plan = chaos.HostFaultPlan.parse(["trace-truncate-input@400"])
            with chaos.armed(plan):
                report = ingest_trace(source, output=out, name="t")
            assert report.input_bytes <= 400
            digests.append(report.trace_digest)
        assert digests[0] == digests[1]
        # the clamped ingest saw strictly fewer records than the full one
        full = ingest_trace(source, output=tmp_path / "full.rtrace",
                            name="t")
        assert read_header(tmp_path / "t0.rtrace")["records"] \
            < full.records

    def test_garbage_quarantines_and_is_deterministic(self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(200))
        reports = []
        for attempt in range(2):
            out = tmp_path / f"g{attempt}.rtrace"
            plan = chaos.HostFaultPlan.parse(["trace-garbage@0"])
            with chaos.armed(plan):
                reports.append(ingest_trace(source, output=out, name="t"))
        assert reports[0].bad_records >= 1
        assert reports[0].bad_records == reports[1].bad_records
        assert reports[0].trace_digest == reports[1].trace_digest

    def test_eio_pauses_then_resume_matches_reference(self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(300))
        out = tmp_path / "t.rtrace"
        plan = chaos.HostFaultPlan.parse(["trace-eio@2"])
        with chaos.armed(plan):
            with pytest.raises(IngestPausedError) as info:
                ingest_trace(source, output=out, name="t",
                             checkpoint_every=50, chunk_bytes=512)
        assert info.value.exit_code == EXIT_PAUSED
        assert sidecar_paths(out)["journal"].exists()
        resumed = ingest_trace(source, output=out, name="t",
                               checkpoint_every=50, chunk_bytes=512)
        assert resumed.resumed_from > 0
        reference = ingest_trace(source, output=tmp_path / "ref.rtrace",
                                 name="t")
        assert out.read_bytes() \
            == (tmp_path / "ref.rtrace").read_bytes()
        assert resumed.trace_digest == reference.trace_digest

    def test_changed_input_refuses_resume(self, tmp_path):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(300))
        out = tmp_path / "t.rtrace"
        with chaos.armed(chaos.HostFaultPlan.parse(["trace-eio@2"])):
            with pytest.raises(IngestPausedError):
                ingest_trace(source, output=out, name="t",
                             checkpoint_every=50, chunk_bytes=512)
        source.write_text(lackey_input(301))
        with pytest.raises(TraceCorruptionError):
            ingest_trace(source, output=out, name="t")


# --------------------------------------------------------- SIGKILL drill


class TestKillResumeDrill:
    def test_sigkilled_ingest_resumes_byte_identical(self, tmp_path):
        source = tmp_path / "big.lackey"
        source.write_text(lackey_input(30_000))
        out = tmp_path / "big.rtrace"
        journal = sidecar_paths(out)["journal"]
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "ingest", str(source),
             "--output", str(out), "--name", "drill",
             "--checkpoint-every", "100"],
            env=cli_env(), cwd=str(tmp_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        # kill as soon as committed progress exists, mid-ingest
        deadline = time.time() + 30
        while time.time() < deadline and proc.poll() is None:
            if journal.exists():
                try:
                    if json.loads(journal.read_text())["input_offset"] > 0:
                        break
                except (ValueError, KeyError):
                    pass
            time.sleep(0.005)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
        if not out.exists():
            # the interesting path: progress journaled, output unpublished
            assert journal.exists()
            resumed = ingest_trace(source, output=out, name="drill",
                                   checkpoint_every=100)
            assert resumed.resumed_from > 0
        reference = ingest_trace(source, output=tmp_path / "ref.rtrace",
                                 name="drill")
        assert out.read_bytes() == (tmp_path / "ref.rtrace").read_bytes()
        # the digest is the one every guard downstream will accept
        assert read_header(out)["trace_digest"] == reference.trace_digest
        for side in sidecar_paths(out).values():
            assert not side.exists()


# ---------------------------------------------------------- CLI contract


class TestCLI:
    def test_exit_zero_clean(self, tmp_path, capsys):
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        assert main(["ingest", str(source)]) == 0
        assert "ingested" in capsys.readouterr().out

    def test_exit_one_quarantined_within_budget(self, tmp_path):
        source = tmp_path / "app.champsim"
        source.write_text("0x1000 R\nbad line\n0x2000 W\n")
        assert main(["ingest", str(source)]) == 1

    def test_exit_two_strict_and_unknown_format(self, tmp_path, capsys):
        source = tmp_path / "app.champsim"
        source.write_text("0x1000 R\nbad line\n")
        assert main(["ingest", str(source), "--strict"]) == 2
        noise = tmp_path / "noise.txt"
        noise.write_text("complete nonsense\n")
        assert main(["ingest", str(noise)]) == 2
        capsys.readouterr()

    def test_exit_four_paused_on_eio(self, tmp_path, capsys):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(100))
        assert main(["ingest", str(source), "--chaos",
                     "trace-eio@0"]) == EXIT_PAUSED
        capsys.readouterr()

    def test_json_report(self, tmp_path, capsys):
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        assert main(["ingest", str(source), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] == 4
        assert payload["trace_digest"]

    def test_run_with_trace(self, tmp_path, capsys):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(300))
        report = ingest_trace(source)
        assert main(["run", "--trace", report.output]) == 0
        capsys.readouterr()

    def test_run_rejects_trace_plus_workload(self, tmp_path, capsys):
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        report = ingest_trace(source)
        assert main(["run", "gups", "--trace", report.output]) == 2
        assert main(["run"]) == 2
        capsys.readouterr()

    def test_run_sampled_composes_with_trace(self, tmp_path, capsys):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(3000))
        report = ingest_trace(source)
        assert main(["run", "--trace", report.output, "--sampled",
                     "--interval-size", "500"]) == 0
        capsys.readouterr()

    def test_sweep_with_trace(self, tmp_path, capsys):
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(300))
        report = ingest_trace(source)
        assert main(["sweep", "--trace", report.output]) == 0
        capsys.readouterr()

    def test_doctor_cli_on_torn_rtrace(self, tmp_path, capsys):
        source = tmp_path / "app.lackey"
        source.write_text(LACKEY)
        report = ingest_trace(source)
        blob = Path(report.output).read_bytes()
        torn = tmp_path / "torn.rtrace"
        torn.write_bytes(blob[:-9])
        assert main(["doctor", str(torn)]) == 1
        assert main(["doctor", str(torn), "--repair"]) == 0
        assert main(["doctor", str(torn)]) == 0
        load_rtrace(torn)
        capsys.readouterr()


# ------------------------------------------------------- stack integration


class TestStackIntegration:
    def test_workload_tokens(self, tmp_path):
        assert is_rtrace_token("rtrace:/x/y.rtrace")
        assert not is_rtrace_token("gups")
        assert rtrace_path("rtrace:/x/y.rtrace") == "/x/y.rtrace"
        assert trace_token("/x/y.rtrace") == "rtrace:/x/y.rtrace"

    def test_suite_resolves_rtrace_token(self, tmp_path):
        from repro.workloads.suite import cached_trace, get_workload
        source = tmp_path / "app.lackey"
        source.write_text(LACKEY)
        report = ingest_trace(source)
        token = trace_token(report.output)
        spec = get_workload(token)
        assert spec.name == "app"
        trace = cached_trace(token, 10, 1)
        assert len(trace.addresses) == report.records

    def test_suite_rejects_missing_rtrace(self):
        from repro.workloads.suite import get_workload
        with pytest.raises(KeyError):
            get_workload("rtrace:/nonexistent/z.rtrace")

    def test_sweep_header_digest_guard(self, tmp_path):
        from repro.resilience.runner import (sweep_header_fields,
                                             verify_rtrace_digests)
        from repro.sim.config import SystemConfig
        source = tmp_path / "app.lackey"
        source.write_text(LACKEY)
        report = ingest_trace(source)
        token = trace_token(report.output)
        header = sweep_header_fields(SystemConfig(), [token], ["vipt"],
                                     2000, 42)
        assert header["rtrace_digests"][token] == report.trace_digest
        verify_rtrace_digests(header, tmp_path / "j")  # clean: no raise
        # tamper: replace the trace with different content
        source.write_text(LACKEY + " L 00009000,8\n")
        ingest_trace(source, force=True)
        with pytest.raises(JournalError):
            verify_rtrace_digests(header, tmp_path / "j")
        # and a deleted trace is also refused
        Path(report.output).unlink()
        with pytest.raises(JournalError):
            verify_rtrace_digests(header, tmp_path / "j")

    def test_serve_validates_rtrace_tokens(self, tmp_path):
        from repro.serve.protocol import ProtocolError, validate_params
        source = tmp_path / "app.champsim"
        source.write_text(CHAMPSIM)
        report = ingest_trace(source)
        token = trace_token(report.output)
        params = validate_params("run", {"workload": token})
        assert params["workloads"] == [token]
        with pytest.raises(ProtocolError):
            validate_params("run", {"workload": "rtrace:/no/such.rtrace"})

    def test_campaign_accepts_rtrace_workload(self, tmp_path):
        from repro.campaign import CampaignSpec, merge_campaign, run_shard
        source = tmp_path / "app.lackey"
        source.write_text(lackey_input(300))
        report = ingest_trace(source)
        token = trace_token(report.output)
        spec = CampaignSpec(
            name="rt", axes=[("workload", [token]),
                             ("design", ["vipt"])],
            trace_length=2000, seed=42)
        campaign_dir = tmp_path / "camp"
        spec.save(campaign_dir)
        shard = run_shard(campaign_dir, shard_id="s1")
        assert shard.complete and shard.failed == 0
        merged = merge_campaign(campaign_dir)
        assert not merged.failed_cells
