"""Tests for the 4way / 4way-8way insertion policies."""

from repro.core.insertion import InsertionPolicy
from repro.core.partition import WayPartitioning
from repro.mem.address import PageSize


PART = WayPartitioning(total_ways=8, partition_ways=4)


class TestFourWay:
    def test_base_pages_restricted_to_pa_partition(self):
        policy = InsertionPolicy.FOUR_WAY
        ways = policy.candidate_ways(PART, 0x1000, PageSize.BASE_4KB)
        assert list(ways) == [4, 5, 6, 7]
        ways = policy.candidate_ways(PART, 0x2000, PageSize.BASE_4KB)
        assert list(ways) == [0, 1, 2, 3]

    def test_superpages_restricted_too(self):
        policy = InsertionPolicy.FOUR_WAY
        ways = policy.candidate_ways(PART, 0x1000, PageSize.SUPER_2MB)
        assert list(ways) == [4, 5, 6, 7]

    def test_coherence_single_partition(self):
        # Paper §IV-C1: the coherence-energy win requires 4way insertion.
        assert InsertionPolicy.FOUR_WAY.coherence_probes_single_partition


class TestFourEightWay:
    def test_base_pages_use_global_lru(self):
        policy = InsertionPolicy.FOUR_EIGHT_WAY
        ways = policy.candidate_ways(PART, 0x1000, PageSize.BASE_4KB)
        assert list(ways) == list(range(8))

    def test_superpages_still_partition_local(self):
        policy = InsertionPolicy.FOUR_EIGHT_WAY
        ways = policy.candidate_ways(PART, 0x1000, PageSize.SUPER_2MB)
        assert list(ways) == [4, 5, 6, 7]

    def test_coherence_must_probe_full_set(self):
        assert not (InsertionPolicy.FOUR_EIGHT_WAY
                    .coherence_probes_single_partition)

    def test_enum_values(self):
        assert InsertionPolicy("4way") is InsertionPolicy.FOUR_WAY
        assert InsertionPolicy("4way-8way") is InsertionPolicy.FOUR_EIGHT_WAY
