"""Concurrent ``SweepJournal`` readers against a live, writing sweep.

The journal's contract is that *readers never see garbage*: every
record is checksummed and appends are flushed+fsynced, so a reader
sampling the file mid-sweep sees a checksum-valid prefix — at worst one
torn trailing line (which ``read()`` tolerates and ``scan()`` flags
only in final position).  These tests hammer that contract with reader
threads polling while a supervised parallel sweep (and a raw writer
loop) appends.
"""

import json
import threading
import time

from repro.resilience.errors import JournalError
from repro.resilience.runner import SweepJournal, _record_checksum
from repro.sim.config import SystemConfig


def _assert_valid_prefix(journal: SweepJournal) -> int:
    """Every scanned record except possibly the last must be intact;
    returns the number of valid records seen."""
    entries = list(journal.scan())
    for position, (number, _line, record) in enumerate(entries):
        if record is None:
            assert position == len(entries) - 1, (
                f"mid-file corruption at line {number} visible to a "
                f"concurrent reader")
    return sum(1 for _n, _l, record in entries if record is not None)


class TestConcurrentReaders:
    def test_readers_see_only_valid_prefixes_of_supervised_sweep(
            self, tmp_path):
        """N reader threads poll scan()/read() while a supervised
        parallel sweep writes; no reader ever observes a bad prefix."""
        from repro.perf.parallel import parallel_sweep
        from repro.resilience.supervisor import SupervisionPolicy

        journal_path = tmp_path / "live.jsonl"
        journal = SweepJournal(journal_path)
        stop = threading.Event()
        problems = []
        observed_counts = []

        def _reader():
            while not stop.is_set():
                if not journal_path.exists():
                    time.sleep(0.002)
                    continue
                try:
                    observed_counts.append(_assert_valid_prefix(journal))
                    # read() must either parse cleanly or (only in a
                    # torn-tail race) still never raise mid-file errors.
                    header, cells = journal.read()
                    assert header["type"] == "header"
                    for record in cells.values():
                        assert record["checksum"] == \
                            _record_checksum(record)
                except JournalError:
                    # write_header() briefly unlinks before the first
                    # append; a reader in that window sees no file/header
                    continue
                except AssertionError as exc:
                    problems.append(repr(exc))
                    return
                time.sleep(0.002)

        readers = [threading.Thread(target=_reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        try:
            report = parallel_sweep(
                SystemConfig(seed=42), ["gups", "mcf"],
                trace_length=4_000, seed=42,
                designs=("vipt", "seesaw"),
                journal_path=journal_path, jobs=2,
                policy=SupervisionPolicy())
        finally:
            stop.set()
            for thread in readers:
                thread.join(30)
        assert not problems, problems
        assert report.ok and report.executed == 4
        # the readers actually raced the writer (saw intermediate sizes)
        assert observed_counts, "readers never sampled the journal"
        assert max(observed_counts) >= 1

    def test_reader_tolerates_torn_tail_while_writer_appends(
            self, tmp_path):
        """A raw writer thread appends records (including a simulated
        torn final write); readers must treat the torn bytes as the
        (ignorable) trailing line only."""
        journal_path = tmp_path / "torn.jsonl"
        journal = SweepJournal(journal_path, min_free_bytes=None)
        journal.write_header({"workloads": ["gups"], "designs": ["vipt"],
                              "config": {}, "config_digest": "x",
                              "trace_length": 1, "seed": 1})
        stop = threading.Event()
        problems = []

        def _writer():
            for index in range(200):
                journal.append_done("gups", "vipt", f"digest-{index}",
                                    {"index": index})
            # simulate a crash mid-append: raw half-record at the tail
            with open(journal_path, "ab") as handle:
                handle.write(b'{"type": "done", "workload": "gu')
            stop.set()

        def _reader():
            while not stop.is_set():
                try:
                    _assert_valid_prefix(journal)
                except AssertionError as exc:
                    problems.append(repr(exc))
                    return

        writer = threading.Thread(target=_writer)
        readers = [threading.Thread(target=_reader) for _ in range(2)]
        writer.start()
        for thread in readers:
            thread.start()
        writer.join(60)
        for thread in readers:
            thread.join(60)
        assert not problems, problems
        # after the "crash", read() still parses the valid prefix and
        # drops only the torn tail
        _header, cells = journal.read()
        assert cells[("gups", "vipt")]["result"] == {"index": 199}

    def test_checksums_survive_canonicalization_under_readers(
            self, tmp_path):
        """rewrite_canonical() is atomic: a reader polling during the
        rewrite sees either the old or the new file, never a mix."""
        journal_path = tmp_path / "canon.jsonl"
        journal = SweepJournal(journal_path, min_free_bytes=None)
        journal.write_header({"workloads": ["gups"],
                              "designs": ["vipt", "seesaw"],
                              "config": {}, "config_digest": "x",
                              "trace_length": 1, "seed": 1})
        # append superseded + out-of-order records to give the rewrite
        # real work
        journal.append_done("gups", "seesaw", "d2", {"pass": 1})
        journal.append_done("gups", "vipt", "d1", {"pass": 1})
        journal.append_done("gups", "seesaw", "d2", {"pass": 2})
        stop = threading.Event()
        problems = []

        def _reader():
            while not stop.is_set():
                try:
                    count = _assert_valid_prefix(journal)
                    assert count >= 1
                except AssertionError as exc:
                    problems.append(repr(exc))
                    return

        readers = [threading.Thread(target=_reader) for _ in range(2)]
        for thread in readers:
            thread.start()
        try:
            for _ in range(20):
                journal.append_done("gups", "vipt", "d1",
                                    {"pass": 3})
                journal.rewrite_canonical()
        finally:
            stop.set()
            for thread in readers:
                thread.join(30)
        assert not problems, problems
        lines = journal_path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r.get("type") for r in records] == \
            ["header", "done", "done"]
        # canonical enumeration order: vipt before seesaw
        assert records[1]["design"] == "vipt"
        assert records[2]["design"] == "seesaw"
