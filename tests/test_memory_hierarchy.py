"""Tests for the L2/LLC/DRAM backing hierarchy."""

import pytest

from repro.cache.hierarchy import DRAMModel, MemoryHierarchy


class TestDRAM:
    def test_latency_scales_with_frequency(self):
        dram = DRAMModel(round_trip_ns=51.0)
        # Paper Table II: 51ns round trip.
        assert dram.latency_cycles(1.33) == 68
        assert dram.latency_cycles(4.0) == 204


class TestMissService:
    def test_cold_miss_goes_to_dram(self):
        hierarchy = MemoryHierarchy(llc_size=1024 * 1024, llc_latency=30)
        result = hierarchy.service_miss(0x1000)
        assert result.serviced_by == "dram"
        assert result.llc_accessed and result.dram_accessed
        assert result.latency_cycles == 30 + hierarchy.dram.latency_cycles(1.33)

    def test_second_miss_hits_llc(self):
        hierarchy = MemoryHierarchy(llc_size=1024 * 1024, llc_latency=30)
        hierarchy.service_miss(0x1000)
        result = hierarchy.service_miss(0x1000)
        assert result.serviced_by == "llc"
        assert result.latency_cycles == 30
        assert not result.dram_accessed

    def test_l2_level_optional(self):
        hierarchy = MemoryHierarchy(l2_size=256 * 1024, l2_latency=12,
                                    llc_size=1024 * 1024, llc_latency=30)
        hierarchy.service_miss(0x1000)
        result = hierarchy.service_miss(0x1000)
        assert result.serviced_by == "l2"
        assert result.latency_cycles == 12

    def test_no_levels_all_dram(self):
        hierarchy = MemoryHierarchy(llc_size=0)
        result = hierarchy.service_miss(0x1000)
        assert result.serviced_by == "dram"

    def test_writeback_lands_in_nearest_level(self):
        hierarchy = MemoryHierarchy(llc_size=1024 * 1024)
        hierarchy.writeback(0x2000)
        assert hierarchy.levels[0].cache.contains(0x2000)

    def test_dram_access_counter(self):
        hierarchy = MemoryHierarchy(llc_size=1024 * 1024)
        hierarchy.service_miss(0x1000)
        hierarchy.service_miss(0x2000)
        assert hierarchy.dram.accesses == 2
