"""Tests for the transparent-huge-page OS policy layer."""

import pytest

from repro.mem.address import PAGE_SIZE_2MB, PAGE_SIZE_4KB, PageSize
from repro.mem.fragmentation import fragment_memory
from repro.mem.os_policy import MemoryManager, THPPolicy
from repro.mem.physical import PhysicalMemory

VA = 0x4000_0000  # 2MB aligned


class TestTouch:
    def test_first_touch_allocates_superpage_under_thp_always(
            self, memory_manager):
        mapping = memory_manager.touch(VA + 123)
        assert mapping.page_size is PageSize.SUPER_2MB
        assert memory_manager.stats.superpages_allocated == 1

    def test_touch_is_idempotent(self, memory_manager):
        first = memory_manager.touch(VA)
        second = memory_manager.touch(VA + 999)
        assert first == second
        assert memory_manager.stats.superpages_allocated == 1

    def test_thp_never_uses_base_pages(self, physical_memory):
        manager = MemoryManager(physical_memory, thp_policy=THPPolicy.NEVER)
        mapping = manager.touch(VA)
        assert mapping.page_size is PageSize.BASE_4KB
        assert manager.stats.base_pages_allocated == 1

    def test_thp_madvise_only_advised_regions(self, physical_memory):
        manager = MemoryManager(physical_memory, thp_policy=THPPolicy.MADVISE)
        assert manager.touch(VA).page_size is PageSize.BASE_4KB
        other = VA + 4 * PAGE_SIZE_2MB
        manager.madvise_hugepage(other)
        assert manager.touch(other).page_size is PageSize.SUPER_2MB

    def test_fallback_to_base_page_when_fragmented(self):
        memory = PhysicalMemory(32 * 1024 * 1024)
        fragment_memory(memory, 0.6, seed=3)
        manager = MemoryManager(memory, thp_policy=THPPolicy.ALWAYS)
        # Touch more regions than there are free 2MB blocks: once they run
        # out, the OS falls back to base pages (the Fig. 3 mechanism).
        free_blocks = memory.allocator.available_blocks_at_or_above(9)
        mappings = [manager.touch(VA + i * PAGE_SIZE_2MB)
                    for i in range(free_blocks + 3)]
        assert any(m.page_size is PageSize.BASE_4KB for m in mappings)
        assert any(m.page_size is PageSize.SUPER_2MB for m in mappings)
        assert manager.stats.superpage_fallbacks >= 1

    def test_region_with_existing_base_page_never_gets_superpage(
            self, memory_manager):
        # Force a base page into the region first.
        memory_manager.thp_policy = THPPolicy.NEVER
        memory_manager.touch(VA)
        memory_manager.thp_policy = THPPolicy.ALWAYS
        mapping = memory_manager.touch(VA + PAGE_SIZE_4KB)
        assert mapping.page_size is PageSize.BASE_4KB

    def test_touch_range_faults_every_page(self, memory_manager):
        memory_manager.thp_policy = THPPolicy.NEVER
        memory_manager.touch_range(VA, 10 * PAGE_SIZE_4KB)
        table = memory_manager.page_table(0)
        for i in range(10):
            assert table.is_mapped(VA + i * PAGE_SIZE_4KB)

    def test_separate_address_spaces(self, memory_manager):
        memory_manager.touch(VA, asid=1)
        assert memory_manager.page_table(1).is_mapped(VA)
        assert not memory_manager.page_table(2).is_mapped(VA)


class TestFootprintFraction:
    def test_all_superpages_gives_fraction_one(self, memory_manager):
        for i in range(4):
            memory_manager.touch(VA + i * PAGE_SIZE_2MB)
        assert memory_manager.footprint_superpage_fraction() == 1.0

    def test_mixed_fraction(self, memory_manager):
        memory_manager.touch(VA)  # superpage
        memory_manager.thp_policy = THPPolicy.NEVER
        memory_manager.touch(VA + PAGE_SIZE_2MB)  # one base page
        fraction = memory_manager.footprint_superpage_fraction()
        expected = PAGE_SIZE_2MB / (PAGE_SIZE_2MB + PAGE_SIZE_4KB)
        assert fraction == pytest.approx(expected)

    def test_empty_footprint_is_zero(self, memory_manager):
        assert memory_manager.footprint_superpage_fraction() == 0.0


class TestSplinterAndPromotion:
    def test_splinter_fires_invalidation_hook(self, memory_manager):
        events = []
        memory_manager.register_invalidation_hook(
            lambda vb, ps: events.append((vb, ps)))
        memory_manager.touch(VA)
        memory_manager.splinter_superpage(VA)
        assert (VA, PageSize.SUPER_2MB) in events
        assert memory_manager.stats.superpages_splintered == 1

    def test_splinter_preserves_translation(self, memory_manager):
        memory_manager.touch(VA)
        pa_before = memory_manager.page_table(0).translate(VA + 777)
        memory_manager.splinter_superpage(VA)
        assert memory_manager.page_table(0).translate(VA + 777) == pa_before

    def test_promote_region_after_splinter(self, memory_manager):
        memory_manager.touch(VA)
        memory_manager.splinter_superpage(VA)
        mapping = memory_manager.promote_region(VA)
        assert mapping is not None
        assert mapping.page_size is PageSize.SUPER_2MB
        assert memory_manager.stats.superpages_promoted == 1

    def test_promote_fires_promotion_hook_with_old_frames(
            self, memory_manager):
        events = []
        memory_manager.register_promotion_hook(
            lambda vb, old: events.append((vb, len(old))))
        memory_manager.touch(VA)
        memory_manager.splinter_superpage(VA)
        memory_manager.promote_region(VA)
        assert events == [(VA, 512)]

    def test_promote_fires_invalidations_for_base_pages(self, memory_manager):
        invalidations = []
        memory_manager.touch(VA)
        memory_manager.splinter_superpage(VA)
        memory_manager.register_invalidation_hook(
            lambda vb, ps: invalidations.append(ps))
        memory_manager.promote_region(VA)
        assert invalidations.count(PageSize.BASE_4KB) == 512

    def test_promote_non_resident_region_returns_none(self, memory_manager):
        assert memory_manager.promote_region(VA) is None

    def test_promote_already_superpage_returns_none(self, memory_manager):
        memory_manager.touch(VA)
        assert memory_manager.promote_region(VA) is None

    def test_promote_frees_old_frames(self, memory_manager):
        free_before = memory_manager.physical.free_bytes
        memory_manager.touch(VA)
        memory_manager.splinter_superpage(VA)
        memory_manager.promote_region(VA)
        # One 2MB page resident; 512 old frames freed.
        assert (free_before - memory_manager.physical.free_bytes
                == PAGE_SIZE_2MB)

    def test_region_can_get_superpage_again_after_promotion(
            self, memory_manager):
        """Promotion must clear the 'broken region' fast-path marker."""
        memory_manager.thp_policy = THPPolicy.NEVER
        memory_manager.touch_range(VA, PAGE_SIZE_2MB)
        memory_manager.thp_policy = THPPolicy.ALWAYS
        assert memory_manager.promote_region(VA) is not None
        table = memory_manager.page_table(0)
        assert table.page_size_of(VA) is PageSize.SUPER_2MB
