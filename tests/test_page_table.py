"""Tests for the multi-page-size radix page table."""

import pytest

from repro.mem.address import PAGE_SIZE_2MB, PAGE_SIZE_4KB, PageSize
from repro.mem.page_table import (
    WALK_REFERENCES,
    Mapping,
    PageTable,
    TranslationFault,
)

VA_2MB = 0x4000_0000          # 2MB-aligned
PA_2MB = 0x1000_0000          # 2MB-aligned


class TestMapping:
    def test_translate_within_mapping(self):
        mapping = Mapping(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        assert mapping.translate(VA_2MB + 12345) == PA_2MB + 12345

    def test_translate_outside_raises(self):
        mapping = Mapping(VA_2MB, PA_2MB, PageSize.BASE_4KB)
        with pytest.raises(ValueError):
            mapping.translate(VA_2MB + PAGE_SIZE_4KB)

    def test_is_superpage(self):
        assert Mapping(0, 0, PageSize.SUPER_2MB).is_superpage
        assert not Mapping(0, 0, PageSize.BASE_4KB).is_superpage


class TestMapUnmap:
    def test_map_and_translate_4kb(self, page_table):
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        assert page_table.translate(0x1FFF) == 0x2FFF

    def test_map_and_translate_2mb(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        assert page_table.translate(VA_2MB + 0x12_3456) == PA_2MB + 0x12_3456

    def test_map_and_translate_1gb(self, page_table):
        gb = 2 << 30
        page_table.map(gb, 0, PageSize.SUPER_1GB)
        assert page_table.translate(gb + 0x3FFF_FFFF) == 0x3FFF_FFFF

    def test_misaligned_map_rejected(self, page_table):
        with pytest.raises(ValueError):
            page_table.map(0x1234, 0x2000, PageSize.BASE_4KB)
        with pytest.raises(ValueError):
            page_table.map(VA_2MB + PAGE_SIZE_4KB, PA_2MB, PageSize.SUPER_2MB)

    def test_double_map_rejected(self, page_table):
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        with pytest.raises(ValueError):
            page_table.map(0x1000, 0x3000, PageSize.BASE_4KB)

    def test_superpage_over_base_pages_rejected(self, page_table):
        page_table.map(VA_2MB, 0x2000, PageSize.BASE_4KB)
        with pytest.raises(ValueError):
            page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)

    def test_base_page_under_superpage_rejected(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        with pytest.raises(ValueError):
            page_table.map(VA_2MB + PAGE_SIZE_4KB, 0x9000, PageSize.BASE_4KB)

    def test_unmap_removes_translation(self, page_table):
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        page_table.unmap(0x1000, PageSize.BASE_4KB)
        with pytest.raises(TranslationFault):
            page_table.translate(0x1000)

    def test_unmap_missing_raises_fault(self, page_table):
        with pytest.raises(TranslationFault):
            page_table.unmap(0x5000, PageSize.BASE_4KB)

    def test_len_counts_mappings(self, page_table):
        assert len(page_table) == 0
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        assert len(page_table) == 2
        page_table.unmap(0x1000, PageSize.BASE_4KB)
        assert len(page_table) == 1

    def test_is_mapped(self, page_table):
        assert not page_table.is_mapped(0x1000)
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        assert page_table.is_mapped(0x1fff)

    def test_mappings_iterator(self, page_table):
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        sizes = {m.page_size for m in page_table.mappings()}
        assert sizes == {PageSize.BASE_4KB, PageSize.SUPER_2MB}


class TestWalk:
    def test_walk_reference_counts_by_leaf_level(self, page_table):
        # x86-64: 4 refs for 4KB leaves, 3 for 2MB, 2 for 1GB.
        page_table.map(0x1000, 0x2000, PageSize.BASE_4KB)
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        page_table.map(2 << 30, 0, PageSize.SUPER_1GB)
        assert page_table.walk(0x1000)[1] == 4
        assert page_table.walk(VA_2MB)[1] == 3
        assert page_table.walk(2 << 30)[1] == 2

    def test_walk_constants_match(self):
        assert WALK_REFERENCES[PageSize.BASE_4KB] == 4
        assert WALK_REFERENCES[PageSize.SUPER_2MB] == 3
        assert WALK_REFERENCES[PageSize.SUPER_1GB] == 2

    def test_page_size_of(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        assert page_table.page_size_of(VA_2MB + 5) is PageSize.SUPER_2MB


class TestSplinterPromote:
    def test_splinter_preserves_translations(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        pieces = page_table.splinter(VA_2MB)
        assert len(pieces) == 512
        # Same VA -> PA mapping, different granularity (paper §IV-C2).
        for probe in (0, 0x1234, PAGE_SIZE_2MB - 1):
            assert page_table.translate(VA_2MB + probe) == PA_2MB + probe
        assert page_table.page_size_of(VA_2MB) is PageSize.BASE_4KB

    def test_promote_reinstalls_superpage(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        page_table.splinter(VA_2MB)
        new_pa = 0x4000_0000
        mapping = page_table.promote(VA_2MB, new_pa)
        assert mapping.page_size is PageSize.SUPER_2MB
        assert page_table.translate(VA_2MB + 77) == new_pa + 77
        assert len(page_table) == 1

    def test_promote_requires_alignment(self, page_table):
        with pytest.raises(ValueError):
            page_table.promote(VA_2MB + PAGE_SIZE_4KB, PA_2MB)

    def test_covering_superpage_region(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        region = page_table.covering_superpage_region(VA_2MB + 99)
        assert region == VA_2MB >> 21
        assert page_table.covering_superpage_region(0x1000) is None

    def test_splinter_then_repromote_round_trip(self, page_table):
        page_table.map(VA_2MB, PA_2MB, PageSize.SUPER_2MB)
        for _ in range(3):
            page_table.splinter(VA_2MB)
            page_table.promote(VA_2MB, PA_2MB)
        assert page_table.page_size_of(VA_2MB) is PageSize.SUPER_2MB
