"""End-to-end tests pinning the paper's headline claims (shapes, not
absolute numbers).

Each test reproduces one qualitative result from the evaluation at small
scale; the full-scale versions live in ``benchmarks/``.
"""

import pytest

from repro.mem.address import PageSize
from repro.mem.os_policy import THPPolicy
from repro.sim.config import SystemConfig
from repro.sim.experiment import (
    compare_designs,
    energy_improvement,
    runtime_improvement,
)
from repro.sim.system import SystemSimulator
from repro.workloads.suite import build_trace, get_workload

LENGTH = 8000


def results_for(workload, **config_kw):
    trace = build_trace(get_workload(workload), length=LENGTH, seed=21)
    return compare_designs(SystemConfig(**config_kw), trace)


class TestHeadlineClaims:
    def test_seesaw_improves_runtime_and_energy(self):
        """Abstract: '3-10% better runtime, and 10-20% better memory
        access energy' against baseline VIPT."""
        results = results_for("redis", l1_size_kb=64)
        assert runtime_improvement(results) > 2.0
        assert energy_improvement(results) > 2.0

    def test_gains_grow_with_cache_size(self):
        """Fig. 7: 'the larger the cache, the more the performance
        improvement since baseline VIPT becomes even more highly
        associative and slow'."""
        gains = []
        for size in (32, 64, 128):
            results = results_for("redis", l1_size_kb=size)
            gains.append(runtime_improvement(results))
        assert gains[0] < gains[1] < gains[2]

    def test_gains_grow_with_frequency(self):
        """Fig. 8: benefits increase with clock frequency as the baseline
        lookup takes more cycles."""
        gains = []
        for freq in (1.33, 4.0):
            results = results_for("redis", l1_size_kb=64,
                                  frequency_ghz=freq)
            gains.append(runtime_improvement(results))
        assert gains[1] > gains[0]

    def test_inorder_beats_ooo_gains(self):
        """Fig. 9: 3-5% higher improvements on in-order cores."""
        ooo = runtime_improvement(
            results_for("redis", l1_size_kb=64, core="ooo"))
        inorder = runtime_improvement(
            results_for("redis", l1_size_kb=64, core="inorder"))
        assert inorder >= ooo

    def test_never_worse_than_baseline(self):
        """Fig. 15 discussion: 'SEESAW never degrades performance. At
        worst, it maintains baseline performance in the absence of
        superpages.'"""
        results = results_for("redis", l1_size_kb=32,
                              thp_policy=THPPolicy.NEVER)
        # Without any superpages SEESAW's only cost is the 4way insertion
        # policy's ~1% hit-rate drop the paper reports in §IV-B1.
        assert runtime_improvement(results) >= -2.0


class TestFragmentationClaims:
    def test_gains_shrink_but_survive_fragmentation(self):
        """Fig. 12: benefits decrease with memhog pressure but remain
        positive."""
        light = results_for("redis", l1_size_kb=64, memhog_fraction=0.0)
        heavy = results_for("redis", l1_size_kb=64, memhog_fraction=0.5)
        light_gain = energy_improvement(light)
        heavy_gain = energy_improvement(heavy)
        assert heavy_gain < light_gain
        assert heavy_gain > -0.5

    def test_superpage_coverage_decays_with_memhog(self):
        """Fig. 3's shape."""
        coverages = []
        for memhog in (0.0, 0.4, 0.65):
            trace = build_trace(get_workload("redis"), length=4000, seed=21)
            sim = SystemSimulator(
                SystemConfig(memhog_fraction=memhog), trace)
            result = sim.run()
            coverages.append(result.footprint_superpage_fraction)
        assert coverages[0] > coverages[1] > coverages[2]


class TestMechanismClaims:
    def test_most_references_hit_superpages(self):
        """Paper §V: 53-95% of references go to superpage-backed lines on
        a moderately fragmented system."""
        trace = build_trace(get_workload("redis"), length=LENGTH, seed=21)
        result = SystemSimulator(SystemConfig(), trace).run()
        assert 0.5 <= result.superpage_reference_fraction <= 1.0

    def test_tft_identifies_most_superpage_accesses(self):
        """Fig. 13: a 16-entry TFT misses under ~10% of superpage accesses
        for locality-friendly workloads."""
        trace = build_trace(get_workload("redis"), length=LENGTH, seed=21)
        result = SystemSimulator(SystemConfig(tft_entries=16), trace).run()
        assert result.tft_missed_superpage_fraction < 0.15

    def test_larger_tft_misses_less(self):
        """Fig. 13: 12 -> 20 entries monotonically reduces missed
        superpage accesses (for a region set that overflows 12)."""
        fractions = []
        for entries in (4, 16):
            trace = build_trace(get_workload("gups"), length=LENGTH, seed=21)
            result = SystemSimulator(
                SystemConfig(tft_entries=entries), trace).run()
            fractions.append(result.tft_missed_superpage_fraction)
        assert fractions[1] <= fractions[0]

    def test_coherence_energy_reduced_for_multithreaded(self):
        """Fig. 11: multi-threaded workloads see large coherence-lookup
        savings (single partition per probe)."""
        trace = build_trace(get_workload("cann"), length=LENGTH, seed=21)
        results = compare_designs(SystemConfig(l1_size_kb=64), trace)
        seesaw_coh = results["seesaw"].energy.l1_coherence_lookup_nj
        vipt_coh = results["vipt"].energy.l1_coherence_lookup_nj
        assert seesaw_coh < vipt_coh * 0.75

    def test_snoopy_coherence_grows_the_energy_win(self):
        """§VI-B: snoopy protocols add 2-5% more energy savings."""
        trace = build_trace(get_workload("cann"), length=LENGTH, seed=21)
        directory = compare_designs(
            SystemConfig(l1_size_kb=64, coherence="directory"), trace)
        snoop = compare_designs(
            SystemConfig(l1_size_kb=64, coherence="snoop"), trace)
        assert (energy_improvement(snoop)
                >= energy_improvement(directory) - 0.25)


class TestAreaControlExperiment:
    def test_seesaw_area_better_spent_than_bigger_baseline(self):
        """§VI-A control: giving the baseline SEESAW's area (TFT ~86B)
        changes nothing — 86 bytes is ~0.3% of a 32KB cache."""
        trace = build_trace(get_workload("redis"), length=LENGTH, seed=21)
        base = SystemSimulator(
            SystemConfig(l1_design="vipt", l1_size_kb=32), trace).run()
        # The nearest implementable 'bigger' baseline is unchanged geometry;
        # SEESAW's gain must exceed any conceivable area-equivalent gain.
        seesaw = SystemSimulator(
            SystemConfig(l1_design="seesaw", l1_size_kb=32), trace).run()
        assert seesaw.runtime_cycles < base.runtime_cycles
