"""Tests for SEESAW's way-partitioning geometry."""

import pytest

from repro.core.partition import WayPartitioning
from repro.mem.address import PageSize


class TestGeometry:
    def test_paper_configurations(self):
        # Paper §IV-B4: 4-way (16KB) partitions across the three sizes.
        for total, parts in [(8, 2), (16, 4), (32, 8)]:
            p = WayPartitioning(total_ways=total, partition_ways=4)
            assert p.num_partitions == parts

    def test_partition_index_starts_at_bit_12(self):
        # Paper §IV-A1: "bit 12 of the virtual address serves as the
        # partition index" for the 32KB cache.
        p = WayPartitioning(total_ways=8, partition_ways=4)
        assert p.partition_index_low_bit == 12
        assert p.partition_index_bits == 1

    def test_64kb_uses_two_partition_bits(self):
        p = WayPartitioning(total_ways=16, partition_ways=4)
        assert p.partition_index_bits == 2

    def test_rejects_non_dividing_partition(self):
        with pytest.raises(ValueError):
            WayPartitioning(total_ways=8, partition_ways=3)


class TestPartitionOf:
    def test_bit12_selects_partition_for_32kb(self):
        p = WayPartitioning(total_ways=8, partition_ways=4)
        assert p.partition_of(0x0000) == 0
        assert p.partition_of(0x1000) == 1
        assert p.partition_of(0x2000) == 0   # bit 13 ignored

    def test_single_partition_always_zero(self):
        p = WayPartitioning(total_ways=4, partition_ways=4)
        assert p.partition_of(0xFFFF_FFFF) == 0

    def test_successive_4kb_regions_stride_partitions(self):
        """Paper §IV-A3: successive 4KB regions of a superpage stride
        across the partitions."""
        p = WayPartitioning(total_ways=8, partition_ways=4)
        partitions = [p.partition_of(i * 4096) for i in range(4)]
        assert partitions == [0, 1, 0, 1]


class TestWaySets:
    def test_ways_of_partition(self):
        p = WayPartitioning(total_ways=8, partition_ways=4)
        assert list(p.ways_of_partition(0)) == [0, 1, 2, 3]
        assert list(p.ways_of_partition(1)) == [4, 5, 6, 7]

    def test_ways_of_partition_bounds(self):
        p = WayPartitioning(total_ways=8, partition_ways=4)
        with pytest.raises(ValueError):
            p.ways_of_partition(2)

    def test_partition_of_way(self):
        p = WayPartitioning(total_ways=8, partition_ways=4)
        assert p.partition_of_way(3) == 0
        assert p.partition_of_way(4) == 1

    def test_other_partitions_ways(self):
        p = WayPartitioning(total_ways=8, partition_ways=4)
        assert p.other_partitions_ways(0) == [4, 5, 6, 7]
        assert p.other_partitions_ways(1) == [0, 1, 2, 3]

    def test_all_ways(self):
        p = WayPartitioning(total_ways=8, partition_ways=4)
        assert list(p.all_ways()) == list(range(8))


class TestEnablingObservation:
    @pytest.mark.parametrize("total_ways", [8, 16, 32])
    def test_partition_bits_inside_superpage_offset(self, total_ways):
        """The paper's core insight: partition-index bits fit in the 2MB
        (and 1GB) page offset but not the 4KB offset."""
        p = WayPartitioning(total_ways=total_ways, partition_ways=4)
        assert not p.index_bits_within_page(PageSize.BASE_4KB)
        assert p.index_bits_within_page(PageSize.SUPER_2MB)
        assert p.index_bits_within_page(PageSize.SUPER_1GB)

    def test_single_partition_fits_any_page(self):
        p = WayPartitioning(total_ways=4, partition_ways=4)
        assert p.index_bits_within_page(PageSize.BASE_4KB)
