"""Unit tests for the repro.perf package and canonical journals.

Covers the pieces the differential suite doesn't: the duplicate-in-flight
guard, failure degradation and fail-fast in the parallel dispatcher,
``SweepJournal.rewrite_canonical``, and the bench harness's percentile /
calibration-normalized regression arithmetic.
"""

import json
from pathlib import Path

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    check_regression,
    load_payload,
    percentile,
    run_benchmark,
)
from repro.perf.parallel import (
    DuplicateCellError,
    _CellTask,
    _ParallelDispatcher,
    parallel_sweep,
)
from repro.resilience import FaultPlan, FaultSpec
from repro.resilience.checkpoint import config_digest
from repro.resilience.runner import (
    CellError,
    SweepJournal,
    resilient_sweep,
)
from repro.sim.config import SystemConfig


def _task(slot, workload="gups", design="vipt", seed=42):
    config = SystemConfig(l1_design=design, seed=seed)
    return _CellTask(slot, workload, design, config, config_digest(config))


def _dispatcher(**overrides):
    parameters = dict(jobs=2, trace_length=500, seed=42, fault_plan=None,
                      timeout_s=None, max_retries=0, retry_backoff_s=0.01,
                      fail_fast=False)
    parameters.update(overrides)
    return _ParallelDispatcher(**parameters)


class TestDuplicateCellGuard:
    def test_spawning_an_in_flight_cell_raises(self):
        dispatcher = _dispatcher()
        first = _task(0)
        duplicate = _task(1)  # same (workload, design), different slot
        dispatcher._spawn(first)
        try:
            with pytest.raises(DuplicateCellError):
                dispatcher._spawn(duplicate)
        finally:
            dispatcher._shutdown()

    def test_distinct_cells_may_fly_together(self):
        dispatcher = _dispatcher()
        dispatcher._spawn(_task(0, design="vipt"))
        try:
            dispatcher._spawn(_task(1, design="seesaw"))
            assert len(dispatcher._in_flight) == 2
        finally:
            dispatcher._shutdown()


class TestParallelFailureHandling:
    def test_worker_error_degrades_to_failed_cell(self, tmp_path):
        """A deterministic worker error (sanitizer tripping on an injected
        fault) becomes a FailedCell record and the sweep keeps going —
        the serial runner's degradation contract."""
        plan = FaultPlan([FaultSpec("stats-skew", 1200)])
        journal = tmp_path / "journal.jsonl"
        report = parallel_sweep(
            SystemConfig(seed=42, sanitize=True), ["gups"],
            trace_length=2000, jobs=2, designs=("vipt", "seesaw"),
            fault_plan=plan, journal_path=journal)
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.error_class == "SanitizerError"
            assert failure.attempts == 1  # deterministic: never retried
        raw = journal.read_text()
        assert raw.count('"type": "failed"') == 2

    def test_fail_fast_raises_cell_error(self):
        """fail_fast propagates the worker's exception shape instead of
        degrading."""
        plan = FaultPlan([FaultSpec("stats-skew", 1200)])
        with pytest.raises(CellError):
            parallel_sweep(
                SystemConfig(seed=42, sanitize=True), ["gups"],
                trace_length=2000, jobs=2, designs=("vipt", "seesaw"),
                fault_plan=plan, fail_fast=True)

    def test_timeout_degrades_after_retries(self, tmp_path):
        report = parallel_sweep(
            SystemConfig(seed=42), ["mcf"], trace_length=60_000, jobs=2,
            designs=("vipt",), timeout_s=0.02, max_retries=1,
            retry_backoff_s=0.01,
            journal_path=tmp_path / "journal.jsonl")
        assert not report.ok
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.error_class == "CellTimeout"
        assert failure.attempts == 2  # first try + one retry


class TestCanonicalJournal:
    def _write_out_of_order(self, path):
        journal = SweepJournal(path)
        journal.write_header({
            "workloads": ["gups", "redis"],
            "designs": ["vipt", "seesaw"],
        })
        journal.append_done("redis", "seesaw", "d1", {"x": 1})
        journal.append_done("gups", "vipt", "d2", {"x": 2})
        journal.append_done("redis", "vipt", "d3", {"x": 3})
        journal.append_done("gups", "seesaw", "d4", {"x": 4})
        return journal

    def test_rewrite_sorts_by_cell_enumeration(self, tmp_path):
        journal = self._write_out_of_order(tmp_path / "journal.jsonl")
        assert journal.rewrite_canonical() is True
        records = [json.loads(line) for line in
                   (tmp_path / "journal.jsonl").read_text().splitlines()]
        assert records[0]["type"] == "header"
        cells = [(r["workload"], r["design"]) for r in records[1:]]
        assert cells == [("gups", "vipt"), ("gups", "seesaw"),
                         ("redis", "vipt"), ("redis", "seesaw")]

    def test_rewrite_is_idempotent(self, tmp_path):
        journal = self._write_out_of_order(tmp_path / "journal.jsonl")
        journal.rewrite_canonical()
        first = (tmp_path / "journal.jsonl").read_bytes()
        assert journal.rewrite_canonical() is False
        assert (tmp_path / "journal.jsonl").read_bytes() == first

    def test_rewrite_collapses_superseded_records(self, tmp_path):
        journal = self._write_out_of_order(tmp_path / "journal.jsonl")
        journal.append_done("gups", "vipt", "d2", {"x": 99})  # supersedes
        journal.rewrite_canonical()
        _, cells = journal.read()
        assert cells[("gups", "vipt")]["result"] == {"x": 99}
        raw = (tmp_path / "journal.jsonl").read_text()
        assert raw.count('"workload": "gups", "design"') == 0  # sanity
        assert sum(1 for line in raw.splitlines()
                   if '"type": "done"' in line) == 4

    def test_rewrite_survives_checksum_validation(self, tmp_path):
        """Rewritten records must still pass the journal's per-record
        checksums (they are carried verbatim, not recomputed)."""
        journal = self._write_out_of_order(tmp_path / "journal.jsonl")
        journal.rewrite_canonical()
        header, cells = journal.read()  # read() raises on checksum failure
        assert len(cells) == 4

    def test_resumed_serial_sweep_matches_uninterrupted(self, tmp_path):
        """Interrupt a journaled sweep after one cell, resume it, and the
        final journal equals an uninterrupted run's journal byte for
        byte (the canonicalize-on-completion contract)."""
        config = SystemConfig(seed=42)
        full = tmp_path / "full.jsonl"
        resilient_sweep(config, ["gups"], trace_length=500,
                        journal_path=full)
        partial = tmp_path / "partial.jsonl"
        resilient_sweep(config, ["gups"], trace_length=500,
                        designs=("vipt",), journal_path=partial)
        # Patch the partial journal's header to the full matrix, as a
        # killed full sweep would have written it.
        header_line = full.read_text().splitlines()[0]
        partial_lines = partial.read_text().splitlines()
        partial.write_text("\n".join([header_line, partial_lines[1]]) + "\n")
        resumed = resilient_sweep(config, ["gups"], trace_length=500,
                                  journal_path=partial, resume=True)
        assert resumed.reused == 1
        assert partial.read_bytes() == full.read_bytes()


class TestBenchArithmetic:
    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == pytest.approx(2.5)
        assert percentile(samples, 95) == pytest.approx(3.85)
        assert percentile([7.0], 95) == 7.0

    def test_regression_check_normalizes_by_calibration(self):
        baseline = {"cells_per_sec": 10.0, "calibration_ops_per_sec": 1e6}
        # Same code speed on a machine twice as fast: no regression.
        current = {"cells_per_sec": 20.0, "calibration_ops_per_sec": 2e6}
        assert check_regression(current, baseline, 0.20) == []
        # 40% normalized drop: flagged.
        slow = {"cells_per_sec": 6.0, "calibration_ops_per_sec": 1e6}
        problems = check_regression(slow, baseline, 0.20)
        assert len(problems) == 1
        assert "regressed" in problems[0]

    def test_regression_check_requires_calibration(self):
        problems = check_regression({"cells_per_sec": 1.0},
                                    {"cells_per_sec": 1.0}, 0.20)
        assert problems


class TestBenchHarness:
    def test_quick_payload_shape(self, tmp_path):
        payload = run_benchmark(workloads=["gups"], designs=("vipt",),
                                trace_length=1_000, repeats=1, quick=False)
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["cells"] == 1
        assert payload["cells_per_sec"] > 0
        assert payload["accesses_per_sec"] > 0
        for stage in ("trace", "construct", "prewarm", "loop", "collect"):
            figures = payload["stages"][stage]
            assert figures["p50_s"] <= figures["p95_s"] or \
                figures["p50_s"] == pytest.approx(figures["p95_s"])
        out = tmp_path / "bench.json"
        out.write_text(json.dumps(payload))
        assert load_payload(out)["cells"] == 1

    def test_load_payload_rejects_other_schemas(self, tmp_path):
        out = tmp_path / "bench.json"
        out.write_text(json.dumps({"schema": 999}))
        with pytest.raises(ValueError):
            load_payload(out)

class TestCommittedBaseline:
    def test_baseline_payload_loads_and_is_complete(self):
        """The regression gate in CI depends on the committed baseline
        staying loadable with a calibration figure and throughput."""
        baseline = (Path(__file__).resolve().parents[1]
                    / "benchmarks" / "perf" / "BENCH_baseline.json")
        payload = load_payload(baseline)
        assert payload["cells_per_sec"] > 0
        assert payload["calibration_ops_per_sec"] > 0
        assert set(payload["stages"]) == {"trace", "construct", "prewarm",
                                          "loop", "collect"}
