"""Tests for the buddy allocator and physical memory."""

import pytest

from repro.mem.address import PAGE_SIZE_2MB, PAGE_SIZE_4KB, PageSize
from repro.mem.physical import (
    ORDER_2MB,
    BuddyAllocator,
    OutOfMemoryError,
    PhysicalMemory,
    order_for_page_size,
)


class TestOrders:
    def test_order_for_page_sizes(self):
        assert order_for_page_size(PageSize.BASE_4KB) == 0
        assert order_for_page_size(PageSize.SUPER_2MB) == 9
        assert order_for_page_size(PageSize.SUPER_1GB) == 18

    def test_order_2mb_constant(self):
        assert 1 << ORDER_2MB == PAGE_SIZE_2MB // PAGE_SIZE_4KB


class TestBuddyAllocator:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            BuddyAllocator(0)
        with pytest.raises(ValueError):
            BuddyAllocator(PAGE_SIZE_4KB + 1)

    def test_allocation_is_aligned_to_order(self):
        buddy = BuddyAllocator(16 * 1024 * 1024)
        for order in (0, 3, 9):
            frame = buddy.allocate(order)
            assert frame % (1 << order) == 0
            buddy.free(frame)

    def test_allocate_free_round_trip_restores_capacity(self):
        buddy = BuddyAllocator(4 * 1024 * 1024)
        before = buddy.free_frames()
        frames = [buddy.allocate(0) for _ in range(100)]
        assert buddy.free_frames() == before - 100
        for frame in frames:
            buddy.free(frame)
        assert buddy.free_frames() == before

    def test_coalescing_rebuilds_large_blocks(self):
        buddy = BuddyAllocator(2 * PAGE_SIZE_2MB)
        frames = [buddy.allocate(0) for _ in range(1024)]
        assert buddy.available_blocks_at_or_above(ORDER_2MB) == 0
        for frame in frames:
            buddy.free(frame)
        assert buddy.available_blocks_at_or_above(ORDER_2MB) == 2

    def test_exhaustion_raises(self):
        buddy = BuddyAllocator(4 * PAGE_SIZE_4KB)
        for _ in range(4):
            buddy.allocate(0)
        with pytest.raises(OutOfMemoryError):
            buddy.allocate(0)
        assert buddy.stats.failed_allocations == 1

    def test_try_allocate_returns_none_instead(self):
        buddy = BuddyAllocator(PAGE_SIZE_4KB)
        assert buddy.try_allocate(0) is not None
        assert buddy.try_allocate(0) is None

    def test_double_free_detected(self):
        buddy = BuddyAllocator(1024 * 1024)
        frame = buddy.allocate(0)
        buddy.free(frame)
        with pytest.raises(ValueError):
            buddy.free(frame)

    def test_free_of_unallocated_frame_rejected(self):
        buddy = BuddyAllocator(1024 * 1024)
        with pytest.raises(ValueError):
            buddy.free(7)

    def test_split_counts_recorded(self):
        buddy = BuddyAllocator(PAGE_SIZE_2MB)
        buddy.allocate(0)
        assert buddy.stats.splits >= 1

    def test_pinned_small_block_prevents_2mb_coalescing(self):
        """The fragmentation mechanism behind Fig. 3: one resident 4KB
        allocation poisons its entire 2MB region."""
        buddy = BuddyAllocator(PAGE_SIZE_2MB)
        frames = [buddy.allocate(0) for _ in range(512)]
        keeper = frames.pop(256)
        for frame in frames:
            buddy.free(frame)
        assert buddy.available_blocks_at_or_above(ORDER_2MB) == 0
        buddy.free(keeper)
        assert buddy.available_blocks_at_or_above(ORDER_2MB) == 1

    def test_fragmentation_index(self):
        buddy = BuddyAllocator(2 * PAGE_SIZE_2MB)
        assert buddy.fragmentation_index() == 0.0
        frames = [buddy.allocate(0) for _ in range(1024)]
        for frame in frames[1::2]:
            buddy.free(frame)
        # Half the memory is free but none of it usable at 2MB granularity.
        assert buddy.fragmentation_index() == pytest.approx(1.0)

    def test_largest_free_order(self):
        buddy = BuddyAllocator(PAGE_SIZE_2MB)
        assert buddy.largest_free_order() == ORDER_2MB
        frames = [buddy.allocate(0) for _ in range(512)]
        assert buddy.largest_free_order() == -1
        buddy.free(frames[0])
        assert buddy.largest_free_order() == 0


class TestPhysicalMemory:
    def test_allocate_page_returns_aligned_base(self):
        memory = PhysicalMemory(16 * 1024 * 1024)
        base = memory.allocate_page(PageSize.SUPER_2MB)
        assert base is not None and base % PAGE_SIZE_2MB == 0

    def test_allocate_page_none_when_fragmented(self):
        memory = PhysicalMemory(PAGE_SIZE_2MB)
        bases = []
        while True:
            base = memory.allocate_page(PageSize.BASE_4KB)
            if base is None:
                break
            bases.append(base)
        assert memory.allocate_page(PageSize.SUPER_2MB) is None
        # Free all but one base page: still no superpage possible.
        for base in bases[:-1]:
            memory.free_page(base)
        assert memory.allocate_page(PageSize.SUPER_2MB) is None

    def test_free_page_rejects_misaligned(self):
        memory = PhysicalMemory(1024 * 1024)
        with pytest.raises(ValueError):
            memory.free_page(123)

    def test_free_bytes_and_can_allocate_superpage(self):
        memory = PhysicalMemory(4 * 1024 * 1024)
        assert memory.free_bytes == 4 * 1024 * 1024
        assert memory.can_allocate_superpage()
        memory.allocate_page(PageSize.SUPER_2MB)
        memory.allocate_page(PageSize.SUPER_2MB)
        assert not memory.can_allocate_superpage()
