"""Property-based tests (hypothesis) on core data structures and invariants.

These pin down the algebraic properties the simulator's correctness rests
on: address-split round trips, buddy-allocator conservation, page-table
translation consistency across splinter/promote, TFT no-false-positive
guarantees, LRU behaviour, and the SEESAW invariant that a line is always
found where the insertion policy put it.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.cache.basic import SetAssociativeCache
from repro.cache.replacement import LRUPolicy
from repro.cache.vipt import L1Timing
from repro.core.partition import WayPartitioning
from repro.core.seesaw import SeesawL1Cache
from repro.core.tft import TranslationFilterTable
from repro.mem.address import (
    PAGE_SIZE_2MB,
    PageSize,
    page_base,
    page_number,
    page_offset,
)
from repro.mem.page_table import PageTable
from repro.mem.physical import BuddyAllocator, OutOfMemoryError

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)
page_sizes = st.sampled_from(list(PageSize))


class TestAddressProperties:
    @given(addresses, page_sizes)
    def test_split_recompose_round_trip(self, address, size):
        vpn = page_number(address, size)
        offset = page_offset(address, size)
        assert (vpn << size.offset_bits) | offset == address

    @given(addresses, page_sizes)
    def test_page_base_idempotent(self, address, size):
        base = page_base(address, size)
        assert page_base(base, size) == base
        assert base <= address < base + int(size)


class TestBuddyProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_frame_conservation(self, orders):
        """allocated frames + free frames == total, always."""
        buddy = BuddyAllocator(8 * 1024 * 1024)
        total = buddy.total_frames
        held = []
        for order in orders:
            try:
                held.append((buddy.allocate(order), order))
            except OutOfMemoryError:
                pass
            allocated = sum(1 << o for _, o in held)
            assert buddy.free_frames() + allocated == total
        for frame, _ in held:
            buddy.free(frame)
        assert buddy.free_frames() == total

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_full_free_always_recoalesces(self, orders):
        buddy = BuddyAllocator(4 * 1024 * 1024)   # 2 x 2MB
        held = []
        for order in orders:
            frame = buddy.try_allocate(order)
            if frame is not None:
                held.append(frame)
        for frame in held:
            buddy.free(frame)
        assert buddy.available_blocks_at_or_above(9) == 2

    @given(st.integers(min_value=0, max_value=9))
    def test_allocation_alignment(self, order):
        buddy = BuddyAllocator(4 * 1024 * 1024)
        frame = buddy.allocate(order)
        assert frame % (1 << order) == 0


class TestPageTableProperties:
    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=PAGE_SIZE_2MB - 1))
    @settings(max_examples=60, deadline=None)
    def test_translate_consistent_across_splinter(self, vregion, pregion,
                                                  offset):
        table = PageTable()
        vbase = vregion * PAGE_SIZE_2MB
        pbase = pregion * PAGE_SIZE_2MB
        table.map(vbase, pbase, PageSize.SUPER_2MB)
        before = table.translate(vbase + offset)
        table.splinter(vbase)
        assert table.translate(vbase + offset) == before

    @given(st.sets(st.integers(min_value=0, max_value=500), min_size=1,
                   max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_mapped_pages_all_translate(self, pages):
        table = PageTable()
        for page in pages:
            table.map(page << 12, (page + 1000) << 12, PageSize.BASE_4KB)
        for page in pages:
            assert table.translate(page << 12) == (page + 1000) << 12
        assert len(table) == len(pages)


class TestTFTProperties:
    @given(st.lists(st.integers(min_value=0, max_value=4000), min_size=1,
                    max_size=100),
           st.integers(min_value=0, max_value=4000))
    @settings(max_examples=60, deadline=None)
    def test_no_false_positives_ever(self, filled_regions, probe_region):
        """A TFT hit must imply the region was filled (and not evicted):
        the property SEESAW's correctness rests on."""
        tft = TranslationFilterTable(16)
        for region in filled_regions:
            tft.fill(region * PAGE_SIZE_2MB)
        if tft.probe(probe_region * PAGE_SIZE_2MB):
            assert probe_region in filled_regions

    @given(st.lists(st.integers(min_value=0, max_value=4000), max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_occupancy_bounded_by_entries(self, regions):
        tft = TranslationFilterTable(16)
        for region in regions:
            tft.fill(region * PAGE_SIZE_2MB)
        assert 0 <= tft.occupancy() <= 16


class TestLRUProperties:
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=100))
    def test_most_recent_touch_never_victim(self, touches):
        lru = LRUPolicy(8)
        for way in touches:
            lru.touch(way)
        assert lru.victim(range(8)) != touches[-1]

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=8,
                    max_size=100))
    def test_victim_is_oldest_distinct(self, touches):
        assume(len(set(touches)) == 8)
        lru = LRUPolicy(8)
        for way in touches:
            lru.touch(way)
        last_seen = {way: i for i, way in enumerate(touches)}
        expected = min(last_seen, key=last_seen.get)
        assert lru.victim(range(8)) == expected


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_access_twice_in_a_row_always_hits(self, raw_addresses):
        cache = SetAssociativeCache(32 * 1024, 8)
        for address in raw_addresses:
            cache.access(address)
            assert cache.access(address) is True

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_valid_lines_never_exceed_capacity(self, raw_addresses):
        cache = SetAssociativeCache(16 * 1024, 4)
        for address in raw_addresses:
            cache.access(address)
        assert cache.valid_lines() <= 16 * 1024 // 64


class TestSeesawInvariants:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=(1 << 26) - 1),  # physical line
        st.booleans()), min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_coherence_probe_always_finds_inserted_lines(self, fills):
        """Under 4way insertion, a single-partition coherence probe must
        find every line the cache currently holds — the correctness of the
        paper's §IV-C1 coherence optimization."""
        timing = L1Timing(base_hit_cycles=2, super_hit_cycles=1)
        cache = SeesawL1Cache(32 * 1024, timing)
        for raw, is_super in fills:
            pa = raw & ~63
            size = PageSize.SUPER_2MB if is_super else PageSize.BASE_4KB
            cache.fill(pa, size)
            result = cache.coherence_probe(pa)
            assert result.present
            assert result.ways_probed == 4

    @given(st.integers(min_value=0, max_value=(1 << 30) - 1))
    def test_partition_of_matches_ways(self, address):
        partitioning = WayPartitioning(total_ways=8, partition_ways=4)
        partition = partitioning.partition_of(address)
        ways = list(partitioning.ways_of_partition(partition))
        assert all(partitioning.partition_of_way(w) == partition
                   for w in ways)

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 26) - 1),
                    min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_superpage_access_after_fill_hits_fast(self, raw_lines):
        """TFT-known superpage lines are always found by the partitioned
        (4-way) lookup when VA and PA agree on the partition bits."""
        timing = L1Timing(base_hit_cycles=2, super_hit_cycles=1)
        cache = SeesawL1Cache(32 * 1024, timing)
        for raw in raw_lines:
            pa = raw & ~63
            va = (7 << 30) | (pa & (PAGE_SIZE_2MB - 1))  # same low 21 bits
            cache.tft.fill(va)
            cache.fill(pa, PageSize.SUPER_2MB)
            result = cache.access(va, pa, PageSize.SUPER_2MB)
            assert result.hit and result.fast_path
            assert result.ways_probed == 4


# ------------------------------------------------- sampling invariants

from repro.sampling import (  # noqa: E402  (grouped with its test class)
    cluster_signatures,
    extrapolate_totals,
    interval_signature,
    partition_intervals,
)


class TestSamplingProperties:
    @given(st.integers(min_value=0, max_value=50_000),
           st.integers(min_value=1, max_value=5_000),
           st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=100, deadline=None)
    def test_partition_covers_trace_exactly_once(self, total, size, start):
        """Every index in [start, total) lands in exactly one interval,
        intervals are in order, adjacent, and never empty."""
        intervals = partition_intervals(total, size, start=start)
        if start >= total:
            assert intervals == []
            return
        assert intervals[0][0] == start
        assert intervals[-1][1] == total
        for lo, hi in intervals:
            assert lo < hi  # never empty
            assert hi - lo <= size
        for (_, prev_hi), (lo, _) in zip(intervals, intervals[1:]):
            assert lo == prev_hi  # adjacent: no gap, no overlap

    @given(st.lists(st.tuples(st.integers(min_value=0,
                                          max_value=(1 << 40) - 1),
                              st.booleans()),
                    min_size=1, max_size=200),
           st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_signature_permutation_stable_and_deterministic(self, refs,
                                                            rng):
        """A signature is a set property of the interval: permuting the
        references changes nothing, and recomputing is bit-identical."""
        addresses = [a for a, _ in refs]
        writes = [w for _, w in refs]
        original = interval_signature(addresses, writes)
        assert interval_signature(addresses, writes).tolist() \
            == original.tolist()
        shuffled = list(refs)
        rng.shuffle(shuffled)
        permuted = interval_signature([a for a, _ in shuffled],
                                      [w for _, w in shuffled])
        assert permuted.tolist() == original.tolist()

    @given(st.lists(st.lists(st.floats(min_value=-100.0, max_value=100.0,
                                       allow_nan=False),
                             min_size=4, max_size=4),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_cluster_weights_partition_intervals(self, signatures, k, seed):
        """Clusters partition the interval index set: weights sum to the
        interval count and every index appears in exactly one cluster."""
        clusters = cluster_signatures(signatures, k, seed=seed)
        assert sum(c.weight for c in clusters) == len(signatures)
        members = [m for c in clusters for m in c.members]
        assert sorted(members) == list(range(len(signatures)))
        for cluster in clusters:
            assert cluster.representative in cluster.members

    @given(st.lists(st.lists(st.floats(min_value=-10.0, max_value=10.0,
                                       allow_nan=False),
                             min_size=2, max_size=2),
                    min_size=1, max_size=20),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_clustering_deterministic_under_fixed_seed(self, signatures,
                                                       seed):
        assert cluster_signatures(signatures, 3, seed=seed) \
            == cluster_signatures(signatures, 3, seed=seed)

    @given(st.lists(st.dictionaries(
        st.sampled_from(["hits", "misses", "cycles", "energy"]),
        st.integers(min_value=0, max_value=10**9),
        min_size=1, max_size=4), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_extrapolation_exact_for_singleton_clusters(self, deltas):
        """With every cluster a singleton each ratio is 1.0, so the
        extrapolated totals equal the plain sum of the deltas — the
        degenerate lane's exactness rests on this identity."""
        totals = extrapolate_totals(deltas, [1.0] * len(deltas))
        for key in {k for d in deltas for k in d}:
            assert totals[key] == sum(d.get(key, 0) for d in deltas)
