"""Property-based tests on cross-module invariants.

Where ``test_properties.py`` pins single data structures, these exercise
interactions: the OS layer against the page table and buddy allocator
under random splinter/promote churn, the VIVT synonym filter under random
fill/write/probe sequences, and the coherence directory against the L1s it
tracks.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache.vipt import L1Timing, ViptL1Cache
from repro.cache.vivt import VivtL1Cache
from repro.coherence.directory import Directory
from repro.mem.address import PAGE_SIZE_2MB, PAGE_SIZE_4KB, PageSize
from repro.mem.os_policy import MemoryManager, THPPolicy
from repro.mem.physical import PhysicalMemory

TIMING = L1Timing(base_hit_cycles=2, super_hit_cycles=1)


class TestOsChurnInvariants:
    @given(st.lists(st.tuples(st.sampled_from(["touch", "splinter",
                                               "promote"]),
                              st.integers(min_value=0, max_value=5)),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_translations_survive_arbitrary_churn(self, operations):
        """After any interleaving of touch/splinter/promote on a handful
        of regions, every previously touched address still translates and
        physical frame accounting stays consistent."""
        memory = PhysicalMemory(64 * 1024 * 1024)
        manager = MemoryManager(memory, thp_policy=THPPolicy.ALWAYS)
        table = manager.page_table(0)
        touched = set()
        for op, region in operations:
            base = 0x4000_0000 + region * PAGE_SIZE_2MB
            if op == "touch":
                manager.touch(base + 123)
                touched.add(base + 123)
            elif op == "splinter":
                if (table.is_mapped(base)
                        and table.page_size_of(base)
                        is PageSize.SUPER_2MB):
                    manager.splinter_superpage(base)
            else:
                if (table.is_mapped(base)
                        and table.page_size_of(base) is PageSize.BASE_4KB):
                    manager.promote_region(base, fault_in_missing=True)
        for address in touched:
            assert table.is_mapped(address)
        # Frame accounting: free + allocated == total.
        allocator = memory.allocator
        allocated = sum(1 << order
                        for order in allocator._allocated.values())
        assert allocator.free_frames() + allocated == allocator.total_frames

    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_splinter_promote_cycles_preserve_size_semantics(self, region,
                                                             cycles):
        memory = PhysicalMemory(64 * 1024 * 1024)
        manager = MemoryManager(memory, thp_policy=THPPolicy.ALWAYS)
        base = 0x4000_0000 + region * PAGE_SIZE_2MB
        manager.touch(base)
        table = manager.page_table(0)
        for _ in range(cycles):
            manager.splinter_superpage(base)
            assert table.page_size_of(base) is PageSize.BASE_4KB
            assert manager.promote_region(base,
                                          fault_in_missing=True) is not None
            assert table.page_size_of(base) is PageSize.SUPER_2MB


class TestVivtSynonymInvariants:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=3),      # virtual alias index
        st.integers(min_value=0, max_value=15),     # physical line index
        st.booleans()),                              # write?
        min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_no_stale_synonym_after_writes(self, operations):
        """After any fill/write sequence, a write through one alias leaves
        no *other* valid alias of the same physical line (the VIVT
        correctness requirement)."""
        cache = VivtL1Cache(16 * 1024, ways=4, hit_cycles=1)
        alias_bases = [0x10_0000, 0x20_0000, 0x30_0000, 0x40_0000]
        for alias, pline, is_write in operations:
            va = alias_bases[alias] + pline * 64
            pa = 0x9_0000 + pline * 64
            cache.fill(va, pa, PageSize.BASE_4KB)
            if is_write:
                cache.access(va, pa, PageSize.BASE_4KB, is_write=True)
                # No other alias of pa may remain cached.
                others = [alias_bases[a] + pline * 64 for a in range(4)
                          if a != alias]
                for other in others:
                    cache_set = cache.store.set_at(
                        cache.store.set_index(other))
                    way = cache_set.find(cache.store.tag_of(other))
                    assert way is None

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=0, max_value=15)),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_coherence_probe_finds_any_cached_alias(self, fills):
        cache = VivtL1Cache(16 * 1024, ways=4, hit_cycles=1)
        alias_bases = [0x10_0000, 0x20_0000, 0x30_0000, 0x40_0000]
        for alias, pline in fills:
            va = alias_bases[alias] + pline * 64
            pa = 0x9_0000 + pline * 64
            cache.fill(va, pa, PageSize.BASE_4KB)
            assert cache.coherence_probe(pa).present


class TestDirectoryInvariants:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=3),      # core
        st.integers(min_value=0, max_value=7),      # line
        st.sampled_from(["read", "write", "evict"])),
        min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_single_writer_invariant(self, operations):
        """After any transaction sequence, a write leaves exactly one
        registered sharer for the line."""
        caches = [ViptL1Cache(32 * 1024, TIMING, seed=i) for i in range(4)]
        directory = Directory(caches)
        for core, line_index, op in operations:
            address = 0x1000 + line_index * 64
            if op == "read":
                caches[core].fill(address, PageSize.BASE_4KB)
                directory.cpu_read(core, address)
            elif op == "write":
                caches[core].fill(address, PageSize.BASE_4KB, dirty=True)
                directory.cpu_write(core, address)
                assert directory.sharer_count(address) == 1
                # No other cache still holds the line.
                for other in range(4):
                    if other != core:
                        assert not caches[other].coherence_probe(
                            address).present
            else:
                # Evictions are driven by the L1: the line leaves the
                # cache *and* the directory is notified (as the eviction
                # hook does in the system simulator).
                caches[core].store.invalidate_line(address)
                directory.evict(core, address)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=0, max_value=7)),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_sharer_count_never_exceeds_cores(self, reads):
        caches = [ViptL1Cache(32 * 1024, TIMING, seed=i) for i in range(4)]
        directory = Directory(caches)
        for core, line_index in reads:
            address = 0x1000 + line_index * 64
            directory.cpu_read(core, address)
            assert 1 <= directory.sharer_count(address) <= 4
