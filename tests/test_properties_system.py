"""Property-based tests on cross-module invariants.

Where ``test_properties.py`` pins single data structures, these exercise
interactions: the OS layer against the page table and buddy allocator
under random splinter/promote churn, the VIVT synonym filter under random
fill/write/probe sequences, and the coherence directory against the L1s it
tracks.
"""

import os

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cache.basic import SetAssociativeCache
from repro.cache.vipt import L1Timing, ViptL1Cache
from repro.cache.vivt import VivtL1Cache
from repro.coherence.directory import Directory
from repro.mem.address import PAGE_SIZE_2MB, PAGE_SIZE_4KB, PageSize
from repro.mem.os_policy import MemoryManager, THPPolicy
from repro.mem.physical import PhysicalMemory
from repro.mem.page_table import PageTable
from repro.tlb.hierarchy import SplitTLBHierarchy, TLBHierarchy

# Shared Hypothesis profiles: "repro" (default) keeps CI fast; select
# "repro-thorough" via REPRO_HYPOTHESIS_PROFILE for deeper local runs.
settings.register_profile(
    "repro", max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.register_profile(
    "repro-thorough", max_examples=200, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "repro"))

TIMING = L1Timing(base_hit_cycles=2, super_hit_cycles=1)


class TestOsChurnInvariants:
    @given(st.lists(st.tuples(st.sampled_from(["touch", "splinter",
                                               "promote"]),
                              st.integers(min_value=0, max_value=5)),
                    min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_translations_survive_arbitrary_churn(self, operations):
        """After any interleaving of touch/splinter/promote on a handful
        of regions, every previously touched address still translates and
        physical frame accounting stays consistent."""
        memory = PhysicalMemory(64 * 1024 * 1024)
        manager = MemoryManager(memory, thp_policy=THPPolicy.ALWAYS)
        table = manager.page_table(0)
        touched = set()
        for op, region in operations:
            base = 0x4000_0000 + region * PAGE_SIZE_2MB
            if op == "touch":
                manager.touch(base + 123)
                touched.add(base + 123)
            elif op == "splinter":
                if (table.is_mapped(base)
                        and table.page_size_of(base)
                        is PageSize.SUPER_2MB):
                    manager.splinter_superpage(base)
            else:
                if (table.is_mapped(base)
                        and table.page_size_of(base) is PageSize.BASE_4KB):
                    manager.promote_region(base, fault_in_missing=True)
        for address in touched:
            assert table.is_mapped(address)
        # Frame accounting: free + allocated == total.
        allocator = memory.allocator
        allocated = sum(1 << order
                        for order in allocator._allocated.values())
        assert allocator.free_frames() + allocated == allocator.total_frames

    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_splinter_promote_cycles_preserve_size_semantics(self, region,
                                                             cycles):
        memory = PhysicalMemory(64 * 1024 * 1024)
        manager = MemoryManager(memory, thp_policy=THPPolicy.ALWAYS)
        base = 0x4000_0000 + region * PAGE_SIZE_2MB
        manager.touch(base)
        table = manager.page_table(0)
        for _ in range(cycles):
            manager.splinter_superpage(base)
            assert table.page_size_of(base) is PageSize.BASE_4KB
            assert manager.promote_region(base,
                                          fault_in_missing=True) is not None
            assert table.page_size_of(base) is PageSize.SUPER_2MB


class TestVivtSynonymInvariants:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=3),      # virtual alias index
        st.integers(min_value=0, max_value=15),     # physical line index
        st.booleans()),                              # write?
        min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_no_stale_synonym_after_writes(self, operations):
        """After any fill/write sequence, a write through one alias leaves
        no *other* valid alias of the same physical line (the VIVT
        correctness requirement)."""
        cache = VivtL1Cache(16 * 1024, ways=4, hit_cycles=1)
        alias_bases = [0x10_0000, 0x20_0000, 0x30_0000, 0x40_0000]
        for alias, pline, is_write in operations:
            va = alias_bases[alias] + pline * 64
            pa = 0x9_0000 + pline * 64
            cache.fill(va, pa, PageSize.BASE_4KB)
            if is_write:
                cache.access(va, pa, PageSize.BASE_4KB, is_write=True)
                # No other alias of pa may remain cached.
                others = [alias_bases[a] + pline * 64 for a in range(4)
                          if a != alias]
                for other in others:
                    cache_set = cache.store.set_at(
                        cache.store.set_index(other))
                    way = cache_set.find(cache.store.tag_of(other))
                    assert way is None

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=0, max_value=15)),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_coherence_probe_finds_any_cached_alias(self, fills):
        cache = VivtL1Cache(16 * 1024, ways=4, hit_cycles=1)
        alias_bases = [0x10_0000, 0x20_0000, 0x30_0000, 0x40_0000]
        for alias, pline in fills:
            va = alias_bases[alias] + pline * 64
            pa = 0x9_0000 + pline * 64
            cache.fill(va, pa, PageSize.BASE_4KB)
            assert cache.coherence_probe(pa).present


class TestDirectoryInvariants:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=3),      # core
        st.integers(min_value=0, max_value=7),      # line
        st.sampled_from(["read", "write", "evict"])),
        min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_single_writer_invariant(self, operations):
        """After any transaction sequence, a write leaves exactly one
        registered sharer for the line."""
        caches = [ViptL1Cache(32 * 1024, TIMING, seed=i) for i in range(4)]
        directory = Directory(caches)
        for core, line_index, op in operations:
            address = 0x1000 + line_index * 64
            if op == "read":
                caches[core].fill(address, PageSize.BASE_4KB)
                directory.cpu_read(core, address)
            elif op == "write":
                caches[core].fill(address, PageSize.BASE_4KB, dirty=True)
                directory.cpu_write(core, address)
                assert directory.sharer_count(address) == 1
                # No other cache still holds the line.
                for other in range(4):
                    if other != core:
                        assert not caches[other].coherence_probe(
                            address).present
            else:
                # Evictions are driven by the L1: the line leaves the
                # cache *and* the directory is notified (as the eviction
                # hook does in the system simulator).
                caches[core].store.invalidate_line(address)
                directory.evict(core, address)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                              st.integers(min_value=0, max_value=7)),
                    min_size=1, max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_sharer_count_never_exceeds_cores(self, reads):
        caches = [ViptL1Cache(32 * 1024, TIMING, seed=i) for i in range(4)]
        directory = Directory(caches)
        for core, line_index in reads:
            address = 0x1000 + line_index * 64
            directory.cpu_read(core, address)
            assert 1 <= directory.sharer_count(address) <= 4


class TestAddressDecomposition:
    """Round-trip properties of the precomputed index/tag/line masks.

    The hot loop decomposes addresses with ``_index_mask`` /
    ``_tag_shift`` / ``_line_mask`` folded at construction; these
    properties pin that the decomposition is lossless and geometry-true
    for every cache shape the simulator instantiates.
    """

    GEOMETRIES = [(32 * 1024, 8, 64), (16 * 1024, 4, 64),
                  (4 * 1024, 1, 64), (2 * 1024 * 1024, 16, 64)]

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.sampled_from(GEOMETRIES))
    def test_decompose_recompose_round_trip(self, address, geometry):
        size_bytes, ways, line_size = geometry
        store = SetAssociativeCache(size_bytes, ways, line_size=line_size)
        tag = store.tag_of(address)
        index = store.set_index(address)
        offset = address & (line_size - 1)
        assert 0 <= index < store.num_sets
        recomposed = ((tag << store._tag_shift)
                      | (index << store.offset_bits) | offset)
        assert recomposed == address
        assert store.line_address(address) == address - offset

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1),
           st.integers(min_value=0, max_value=63))
    def test_all_bytes_of_a_line_decompose_identically(self, address,
                                                       byte_offset):
        store = SetAssociativeCache(32 * 1024, 8)
        base = store.line_address(address)
        sibling = base + byte_offset
        assert store.set_index(sibling) == store.set_index(base)
        assert store.tag_of(sibling) == store.tag_of(base)
        assert store.line_address(sibling) == base


class TestOptimizedCachePathEquivalence:
    """The single-pass ``fill`` fast path (``candidate_ways is None``)
    must be indistinguishable — stats, line contents, LRU order — from
    the explicit find / first_invalid / victim composition it replaced,
    which still runs when candidate ways are constrained."""

    @given(st.lists(st.tuples(st.sampled_from(["probe", "fill"]),
                              st.integers(min_value=0, max_value=255),
                              st.booleans()),
                    min_size=1, max_size=60))
    def test_fill_fast_path_matches_reference_composition(self, operations):
        fast = SetAssociativeCache(4 * 1024, 4)   # 16 sets: heavy conflicts
        reference = SetAssociativeCache(4 * 1024, 4)
        all_ways = list(range(4))
        for op, line_number, flag in operations:
            address = line_number * 64
            if op == "probe":
                assert (fast.probe(address, is_write=flag)
                        == reference.probe(address, is_write=flag))
            else:
                fast.fill(address, dirty=flag)
                reference.fill(address, dirty=flag,
                               candidate_ways=all_ways)
        assert fast.stats == reference.stats
        assert set(fast._sets) == set(reference._sets)
        for index, cache_set in fast._sets.items():
            twin = reference._sets[index]
            assert cache_set.policy._order == twin.policy._order
            for line, other in zip(cache_set.lines, twin.lines):
                assert ((line.valid, line.tag, line.dirty,
                         line.from_superpage, line.line_address)
                        == (other.valid, other.tag, other.dirty,
                            other.from_superpage, other.line_address))

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=511),
                              st.booleans()),
                    min_size=1, max_size=80))
    def test_vipt_access_raw_matches_store_probe_for_base_pages(
            self, references):
        """For 4KB pages (no TFT involvement) the inlined probe inside
        ``access_raw`` must produce the exact hit stream and counters of
        the unit-tested ``SetAssociativeCache.probe``."""
        vipt = ViptL1Cache(32 * 1024, TIMING)
        reference = SetAssociativeCache(vipt.size_bytes, vipt.ways)
        page = PageSize.BASE_4KB
        for line_number, is_write in references:
            address = line_number * 64
            hit = vipt.access_raw(address, address, page, is_write)[0]
            assert hit == reference.probe(address, is_write=is_write)
            if not hit:
                vipt.fill(address, page, dirty=is_write)
                reference.fill(address, dirty=is_write)
        assert vipt.stats.hits == reference.stats.hits
        assert vipt.stats.misses == reference.stats.misses
        assert vipt.stats.ways_probed == reference.stats.ways_probed


class TestTranslateRawEquivalence:
    """``SplitTLBHierarchy.translate_raw`` inlines the single-size L1 TLB
    probes; the generic ``TLBHierarchy.translate`` remains the reference.
    Driving twin hierarchies over one page table, the raw tuple and every
    TLB counter must match reference behaviour on any access pattern."""

    PAGES = ([(0x1000 * (i + 1), 0x9000 + i * 0x1000, PageSize.BASE_4KB)
              for i in range(4)]
             + [(0x4000_0000 + i * PAGE_SIZE_2MB,
                 0x20_0000 * (i + 1), PageSize.SUPER_2MB)
                for i in range(2)])

    def _twins(self):
        table = PageTable()
        for virtual, physical, size in self.PAGES:
            table.map(virtual, physical, size)
        make = lambda: SplitTLBHierarchy(  # noqa: E731
            table, l1_4kb_entries=4, l1_4kb_ways=2,
            l1_2mb_entries=2, l1_2mb_ways=2, l2_entries=8)
        return make(), make()

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=5),
                              st.integers(min_value=0, max_value=4095)),
                    min_size=1, max_size=60))
    def test_raw_tuple_matches_generic_translate(self, accesses):
        fast, reference = self._twins()
        for page_index, offset in accesses:
            virtual = self.PAGES[page_index][0] + offset
            raw = fast.translate_raw(virtual)
            result = TLBHierarchy.translate(reference, virtual)
            assert raw == (result.physical_address, result.page_size,
                           result.level, result.latency_cycles)
        assert fast.l1_4kb.stats == reference.l1_4kb.stats
        assert fast.l1_2mb.stats == reference.l1_2mb.stats
        assert fast.l2_tlb.stats == reference.l2_tlb.stats
        assert fast.walker.stats == reference.walker.stats
