"""Tests for the MOESI protocol transition function."""

import itertools

import pytest

from repro.coherence.protocol import (
    MoesiState,
    ProtocolEvent,
    fill_state_for_read,
    fill_state_for_write,
    next_state,
)


class TestTotality:
    def test_every_state_event_pair_defined(self):
        for state, event in itertools.product(MoesiState, ProtocolEvent):
            new_state, writeback = next_state(state, event)
            assert isinstance(new_state, MoesiState)
            assert isinstance(writeback, bool)


class TestProperties:
    def test_dirty_states(self):
        assert MoesiState.MODIFIED.is_dirty
        assert MoesiState.OWNED.is_dirty
        assert not MoesiState.EXCLUSIVE.is_dirty
        assert not MoesiState.SHARED.is_dirty

    def test_writable_states(self):
        assert MoesiState.MODIFIED.can_write
        assert MoesiState.EXCLUSIVE.can_write
        assert not MoesiState.SHARED.can_write
        assert not MoesiState.OWNED.can_write

    def test_valid_states(self):
        assert not MoesiState.INVALID.is_valid
        assert all(s.is_valid for s in MoesiState if s != MoesiState.INVALID)


class TestTransitions:
    def test_local_write_always_reaches_modified(self):
        for state in MoesiState:
            new_state, _ = next_state(state, ProtocolEvent.LOCAL_WRITE)
            assert new_state is MoesiState.MODIFIED

    def test_remote_reader_demotes_m_to_o(self):
        # MOESI's defining feature: dirty sharing without memory writeback.
        new_state, writeback = next_state(MoesiState.MODIFIED,
                                          ProtocolEvent.PROBE_SHARED)
        assert new_state is MoesiState.OWNED
        assert not writeback

    def test_remote_reader_demotes_e_to_s(self):
        new_state, _ = next_state(MoesiState.EXCLUSIVE,
                                  ProtocolEvent.PROBE_SHARED)
        assert new_state is MoesiState.SHARED

    def test_invalidation_writes_back_dirty_states(self):
        for state in (MoesiState.MODIFIED, MoesiState.OWNED):
            new_state, writeback = next_state(state,
                                              ProtocolEvent.PROBE_INVALIDATE)
            assert new_state is MoesiState.INVALID
            assert writeback

    def test_invalidation_silent_for_clean_states(self):
        for state in (MoesiState.EXCLUSIVE, MoesiState.SHARED):
            _, writeback = next_state(state, ProtocolEvent.PROBE_INVALIDATE)
            assert not writeback

    def test_eviction_writes_back_dirty_only(self):
        assert next_state(MoesiState.MODIFIED, ProtocolEvent.EVICT)[1]
        assert next_state(MoesiState.OWNED, ProtocolEvent.EVICT)[1]
        assert not next_state(MoesiState.SHARED, ProtocolEvent.EVICT)[1]

    def test_local_read_preserves_valid_states(self):
        for state in (MoesiState.MODIFIED, MoesiState.OWNED,
                      MoesiState.EXCLUSIVE, MoesiState.SHARED):
            assert next_state(state, ProtocolEvent.LOCAL_READ)[0] is state


class TestFillStates:
    def test_sole_reader_gets_exclusive(self):
        assert fill_state_for_read(others_have_copy=False) \
            is MoesiState.EXCLUSIVE

    def test_shared_reader_gets_shared(self):
        assert fill_state_for_read(others_have_copy=True) is MoesiState.SHARED

    def test_writer_gets_modified(self):
        assert fill_state_for_write() is MoesiState.MODIFIED
