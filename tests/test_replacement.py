"""Tests for replacement policies."""

import pytest

from repro.cache.replacement import (
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_victim_is_least_recently_used(self):
        lru = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            lru.touch(way)
        assert lru.victim(range(4)) == 0
        lru.touch(0)
        assert lru.victim(range(4)) == 1

    def test_victim_restricted_to_candidates(self):
        """Partition-local LRU: the SEESAW 4way insertion policy."""
        lru = LRUPolicy(8)
        for way in range(8):
            lru.touch(way)
        # Global LRU victim is 0, but candidates name partition 1 (ways 4-7).
        assert lru.victim([4, 5, 6, 7]) == 4
        lru.touch(4)
        assert lru.victim([4, 5, 6, 7]) == 5

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(4).victim([])

    def test_recency_order_exposed(self):
        lru = LRUPolicy(3)
        lru.touch(2)
        assert lru.recency_order()[-1] == 2


class TestTreePLRU:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            TreePLRUPolicy(6)

    def test_untouched_ways_preferred(self):
        plru = TreePLRUPolicy(4)
        plru.touch(0)
        victim = plru.victim(range(4))
        assert victim != 0

    def test_round_robin_like_behaviour(self):
        plru = TreePLRUPolicy(4)
        victims = []
        for _ in range(4):
            victim = plru.victim(range(4))
            victims.append(victim)
            plru.touch(victim)
        assert len(set(victims)) >= 3  # near-perfect coverage of ways

    def test_candidate_fallback(self):
        plru = TreePLRUPolicy(8)
        for way in range(8):
            plru.touch(way)
        victim = plru.victim([2, 3])
        assert victim in (2, 3)


class TestRandom:
    def test_victim_from_candidates_only(self):
        rand = RandomPolicy(8, seed=1)
        for _ in range(50):
            assert rand.victim([1, 5]) in (1, 5)

    def test_deterministic_with_seed(self):
        a = [RandomPolicy(8, seed=3).victim(range(8)) for _ in range(5)]
        b = [RandomPolicy(8, seed=3).victim(range(8)) for _ in range(5)]
        assert a == b

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            RandomPolicy(4).victim([])


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy), ("plru", TreePLRUPolicy), ("random", RandomPolicy),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_policy("mru", 4)
