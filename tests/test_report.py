"""Tests for the plain-text report formatting."""

from repro.analysis.report import (
    Reporter,
    format_min_avg_max,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"],
                            [["redis", 1.5], ["mongo", 10.25]],
                            title="Fig X")
        lines = text.splitlines()
        assert lines[0] == "Fig X"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "redis" in lines[3] and "10.25" in lines[4]

    def test_wide_cells_stretch_columns(self):
        text = format_table(["a"], [["very-long-cell-content"]])
        header, rule, row = text.splitlines()
        assert len(rule) == len(row)


class TestSeries:
    def test_format_series(self):
        text = format_series("dRT", {"redis": 5.1234, "mcf": 2.0})
        assert "redis=5.12%" in text and "mcf=2.00%" in text

    def test_format_min_avg_max(self):
        text = format_min_avg_max("64KB", (1.0, 2.5, 4.0))
        assert "min=1.00%" in text and "avg=2.50%" in text \
            and "max=4.00%" in text


class TestReporter:
    def test_emit_prints_and_returns(self, capsys):
        reporter = Reporter("Table I")
        reporter.add("hello")
        reporter.table(["col"], [["x"]])
        text = reporter.emit()
        captured = capsys.readouterr().out
        assert "Table I" in text and "hello" in text and "col" in text
        assert "Table I" in captured
