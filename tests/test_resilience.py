"""Tests for the resilience harness: checkpoints, crash-safe sweeps,
fault injection, and the associated up-front validation satellites."""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.devtools.sanitize import SanitizerError
from repro.resilience import (
    CheckpointError,
    FAULT_KINDS,
    FaultInjectionError,
    FaultPlan,
    FaultSpec,
    JournalError,
    SweepJournal,
    load_checkpoint,
    resilient_sweep,
    restore_simulator,
    save_checkpoint,
)
from repro.sim.config import SystemConfig
from repro.sim.experiment import (
    compare_designs,
    energy_improvement,
    runtime_improvement,
    sweep,
)
from repro.sim.stats import SimulationResult
from repro.sim.system import SystemSimulator
from repro.workloads.suite import build_trace, get_workload

LENGTH = 2500


def make_trace(name="g500", length=LENGTH, seed=3):
    return build_trace(get_workload(name), length, seed=seed)


def make_config(**overrides):
    defaults = dict(l1_design="seesaw", memhog_fraction=0.4)
    defaults.update(overrides)
    return SystemConfig(**defaults)


# --------------------------------------------------------- validation (sats)

class TestUpFrontValidation:
    def test_run_rejects_warmup_out_of_range(self):
        sim = SystemSimulator(make_config(), make_trace(length=500))
        for bad in (-0.1, 1.0, 1.5):
            with pytest.raises(ValueError, match=r"\[0, 1\)"):
                sim.run(warmup_fraction=bad)

    def test_run_accepts_zero_warmup(self):
        sim = SystemSimulator(make_config(), make_trace(length=500))
        result = sim.run(warmup_fraction=0.0)
        assert result.memory_references == 500

    def test_compare_designs_rejects_unknown_design(self):
        with pytest.raises(ValueError, match="valid designs"):
            compare_designs(make_config(), make_trace(length=500),
                            designs=("vipt", "sesame"))

    def test_improvements_name_available_designs(self):
        results = compare_designs(make_config(), make_trace(length=500),
                                  designs=("vipt", "seesaw"))
        with pytest.raises(ValueError, match="available designs"):
            runtime_improvement(results, baseline="pipt")
        with pytest.raises(ValueError, match="available designs"):
            energy_improvement(results, candidate="vivt")

    def test_sweep_rejects_unknown_design(self):
        with pytest.raises(ValueError, match="valid designs"):
            resilient_sweep(make_config(), ["g500"], trace_length=100,
                            designs=("vipt", "nope"))

    def test_sweep_rejects_unknown_workload_up_front(self):
        with pytest.raises(KeyError, match="valid workloads"):
            resilient_sweep(make_config(), ["graph500"], trace_length=100)

    def test_config_rejects_bad_fractions(self):
        with pytest.raises(ValueError, match="memhog_fraction"):
            SystemConfig(memhog_fraction=1.0)
        with pytest.raises(ValueError, match="aging_fraction"):
            SystemConfig(aging_fraction=-0.2)

    def test_get_workload_lists_valid_names(self):
        with pytest.raises(KeyError, match="valid workloads"):
            get_workload("graph500")


# ------------------------------------------------------------- fault specs

class TestFaultSpecs:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse("energy-skew@2000")
        assert spec == FaultSpec("energy-skew", 2000)

    def test_parse_rejects_bad_forms(self):
        for bad in ("energy-skew", "bogus@5", "energy-skew@x",
                    "energy-skew@-1"):
            with pytest.raises(FaultInjectionError):
                FaultSpec.parse(bad)

    def test_plan_kinds_in_order(self):
        plan = FaultPlan.parse(["stats-skew@10", "energy-skew@5"])
        assert plan.kinds == ["stats-skew", "energy-skew"]


# -------------------------------------------------------- snapshot/restore

class TestSnapshotRestore:
    @pytest.mark.parametrize("design", ["vipt", "seesaw"])
    def test_round_trip_bit_identical(self, design):
        config = make_config(l1_design=design)
        reference = SystemSimulator(config, make_trace()).run()

        sim = SystemSimulator(config, make_trace())
        sim.run_until(LENGTH // 3)
        blob = sim.snapshot()
        resumed = SystemSimulator(config, make_trace())
        resumed.restore(blob)
        assert resumed.finish() == reference

    def test_restore_rejects_other_config(self):
        sim = SystemSimulator(make_config(), make_trace(length=500))
        sim.run_until(100)
        blob = sim.snapshot()
        other = SystemSimulator(make_config(l1_design="vipt"),
                                make_trace(length=500))
        with pytest.raises(CheckpointError, match="configuration"):
            other.restore(blob)

    def test_restore_rejects_other_trace(self):
        sim = SystemSimulator(make_config(), make_trace(length=500))
        sim.run_until(100)
        blob = sim.snapshot()
        other = SystemSimulator(make_config(),
                                make_trace(length=500, seed=99))
        with pytest.raises(CheckpointError, match="trace"):
            other.restore(blob)


class TestCheckpointFiles:
    def test_file_round_trip(self, tmp_path):
        config = make_config()
        reference = SystemSimulator(config, make_trace()).run()

        path = tmp_path / "ckpt.bin"
        sim = SystemSimulator(config, make_trace())
        sim.run_until(LENGTH // 2)
        sim._next_index = LENGTH // 2
        save_checkpoint(path, sim)
        header, _payload = load_checkpoint(path)
        assert header["workload"] == "g500"
        assert header["next_index"] == LENGTH // 2

        resumed = restore_simulator(path, config, make_trace())
        assert resumed.finish() == reference

    def test_corrupted_payload_detected(self, tmp_path):
        path = tmp_path / "ckpt.bin"
        sim = SystemSimulator(make_config(), make_trace(length=500))
        sim.run_until(200)
        save_checkpoint(path, sim)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_not_a_checkpoint(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_text("hello world\n")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_periodic_checkpoints_during_run(self, tmp_path):
        config = make_config()
        reference = SystemSimulator(config, make_trace()).run()
        path = tmp_path / "ckpt.bin"
        sim = SystemSimulator(config, make_trace())
        sim.run_until(1700, checkpoint_path=path, checkpoint_interval=600)
        # the last periodic checkpoint landed at index 1200
        _header, _payload = load_checkpoint(path)
        resumed = restore_simulator(path, config, make_trace())
        assert resumed._next_index == 1200
        assert resumed.finish() == reference


# ------------------------------------------------------------------ sweeps

class TestResilientSweep:
    def test_empty_design_list(self):
        report = resilient_sweep(make_config(), ["g500"], trace_length=200,
                                 designs=())
        assert report.results == {"g500": {}}
        assert report.ok

    def test_single_point_sweep(self):
        report = resilient_sweep(make_config(), ["g500"], trace_length=1000,
                                 designs=("seesaw",))
        assert set(report.results["g500"]) == {"seesaw"}
        assert report.executed == 1

    def test_duplicate_values_collapsed(self):
        report = resilient_sweep(make_config(), ["g500", "g500"],
                                 trace_length=1000,
                                 designs=("vipt", "vipt"))
        assert report.executed == 1
        assert set(report.results) == {"g500"}

    def test_journal_resume_reuses_cells(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        first = resilient_sweep(make_config(), ["g500", "gups"],
                                trace_length=1000, journal_path=journal)
        assert first.executed == 4 and first.reused == 0
        second = resilient_sweep(make_config(), ["g500", "gups"],
                                 trace_length=1000, journal_path=journal)
        assert second.executed == 0 and second.reused == 4
        for workload in first.results:
            assert first.results[workload] == second.results[workload]

    def test_isolated_matches_inline(self):
        inline = resilient_sweep(make_config(), ["g500"], trace_length=1000,
                                 designs=("vipt",))
        isolated = resilient_sweep(make_config(), ["g500"],
                                   trace_length=1000, designs=("vipt",),
                                   isolate=True)
        assert inline.results["g500"]["vipt"] == \
            isolated.results["g500"]["vipt"]

    def test_timeout_degrades_and_continues(self):
        report = resilient_sweep(make_config(), ["g500"], trace_length=2000,
                                 designs=("vipt", "seesaw"),
                                 timeout_s=0.001, max_retries=1,
                                 retry_backoff_s=0.01)
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert failure.error_class == "CellTimeout"
            assert failure.attempts == 2  # initial try + one retry

    def test_classic_sweep_contract_preserved(self):
        results = sweep(make_config(memhog_fraction=0.0), ["g500"],
                        trace_length=1000)
        assert set(results["g500"]) == {"vipt", "seesaw"}


class TestJournalFormat:
    def test_torn_trailing_line_tolerated(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        resilient_sweep(make_config(), ["g500"], trace_length=1000,
                        designs=("vipt",), journal_path=journal_path)
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "done", "workload": "gups", "trunc')
        header, cells = SweepJournal(journal_path).read()
        assert header["type"] == "header"
        assert ("g500", "vipt") in cells
        assert ("gups", "vipt") not in cells

    def test_mid_file_corruption_rejected(self, tmp_path):
        journal_path = tmp_path / "sweep.jsonl"
        resilient_sweep(make_config(), ["g500"], trace_length=1000,
                        designs=("vipt", "seesaw"),
                        journal_path=journal_path)
        lines = journal_path.read_text().splitlines()
        assert len(lines) == 3  # header + two cells
        lines[1] = lines[1][:-10] + 'corrupted"'
        journal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt record"):
            SweepJournal(journal_path).read()

    def test_missing_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no sweep journal"):
            SweepJournal(tmp_path / "nope.jsonl").read()

    def test_result_survives_json_round_trip(self):
        result = SystemSimulator(make_config(), make_trace(length=800)).run()
        payload = json.loads(json.dumps(result.to_dict()))
        assert SimulationResult.from_dict(payload) == result


def _sweep_victim(journal_path):
    """Child process body for the kill-and-resume test."""
    resilient_sweep(SystemConfig(l1_design="seesaw", memhog_fraction=0.4),
                    ["g500", "gups"], trace_length=LENGTH,
                    designs=("vipt", "seesaw"), journal_path=journal_path)


@pytest.mark.skipif("fork" not in multiprocessing.get_all_start_methods(),
                    reason="kill-and-resume test needs fork")
def test_sweep_killed_mid_run_resumes_bit_identical(tmp_path):
    journal_path = str(tmp_path / "sweep.jsonl")
    reference = resilient_sweep(make_config(), ["g500", "gups"],
                                trace_length=LENGTH,
                                designs=("vipt", "seesaw"))

    context = multiprocessing.get_context("fork")
    victim = context.Process(target=_sweep_victim, args=(journal_path,))
    victim.start()
    # wait until at least one cell has been journaled, then SIGKILL —
    # the harshest interruption: no cleanup code runs.
    deadline = time.time() + 60
    done_cells = 0
    while time.time() < deadline and victim.is_alive():
        if os.path.exists(journal_path):
            with open(journal_path, "r", encoding="utf-8") as handle:
                done_cells = sum(1 for line in handle
                                 if '"type": "done"' in line)
            if done_cells >= 1:
                break
        time.sleep(0.02)
    if victim.is_alive():
        os.kill(victim.pid, signal.SIGKILL)
    victim.join(10)
    assert done_cells >= 1, "victim never completed a cell within 60s"

    resumed = resilient_sweep(make_config(), ["g500", "gups"],
                              trace_length=LENGTH,
                              designs=("vipt", "seesaw"),
                              journal_path=journal_path)
    assert resumed.ok
    assert resumed.reused >= 1
    for workload in reference.results:
        for design in reference.results[workload]:
            assert resumed.results[workload][design] == \
                reference.results[workload][design]


# --------------------------------------------------------- fault injection

FAULT_SCHEDULE = {
    "tft-false-positive": 1200,
    "partition-desync": LENGTH - 200,
    "tlb-shootdown-drop": 1200,
    "trace-truncate": 1800,
    "energy-skew": 1200,
    "stats-skew": 1200,
}


class TestFaultInjection:
    def test_schedule_covers_every_kind(self):
        assert set(FAULT_SCHEDULE) == set(FAULT_KINDS)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_sanitizer_detects_each_fault_class(self, kind):
        config = make_config(sanitize=True)
        sim = SystemSimulator(config, make_trace())
        sim.arm_faults(FaultPlan([FaultSpec(kind, FAULT_SCHEDULE[kind])]))
        with pytest.raises(SanitizerError):
            sim.run()

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_unsanitized_run_completes_and_flags(self, kind):
        config = make_config(sanitize=False)
        sim = SystemSimulator(config, make_trace())
        sim.arm_faults(FaultPlan([FaultSpec(kind, FAULT_SCHEDULE[kind])]))
        result = sim.run()
        assert kind in result.faults_injected

    def test_fault_requiring_tft_rejects_plain_vipt(self):
        config = make_config(l1_design="vipt", sanitize=False)
        sim = SystemSimulator(config, make_trace(length=800))
        sim.arm_faults(FaultPlan([FaultSpec("tft-false-positive", 10)]))
        with pytest.raises(FaultInjectionError, match="TFT"):
            sim.run()

    def test_clean_sanitized_runs_stay_clean(self):
        # the detection paths must not false-positive on healthy runs
        for design in ("vipt", "seesaw"):
            config = make_config(l1_design=design, sanitize=True)
            result = SystemSimulator(config, make_trace(length=1500)).run()
            assert result.faults_injected == []

    def test_sweep_report_carries_faults(self):
        plan = FaultPlan([FaultSpec("stats-skew", 1200)])
        report = resilient_sweep(make_config(sanitize=False), ["g500"],
                                 trace_length=LENGTH, designs=("seesaw",),
                                 fault_plan=plan)
        assert report.ok
        result = report.results["g500"]["seesaw"]
        assert result.faults_injected == ["stats-skew"]
