"""Statistical accuracy harness for the sampled lane.

The sampled lane's contract (README, "Sampled runs") has two halves:

* **Accuracy.**  On every golden-matrix cell (all four designs x the two
  golden workloads) the default :class:`SamplingPlan` must land every
  headline metric within BOTH its *reported* confidence bound and the
  flat 5% relative-error budget.  A lane that is accurate but mis-states
  its own confidence fails just as hard as an inaccurate one.
* **Degenerate exactness.**  When sampling cannot help — the cluster
  budget meets or exceeds the interval count, or one interval spans the
  whole trace — the lane must reproduce the exact simulation
  bit-identically, not merely approximately.

The accuracy matrix runs at 12,000 references: long enough that the
default plan (600-reference intervals, K=10) is genuinely sampling
(20 intervals, half of them skipped), short enough for tier-1.  The
degenerate cases run at the golden length (6,000), where 10 intervals
<= K=10 collapses the lane to exact by construction.
"""

from __future__ import annotations

import pytest

from repro.sampling import HEADLINE_METRICS, SamplingPlan, relative_error
from repro.sampling.runner import simulate_sampled
from repro.sim.config import SystemConfig
from repro.sim.system import SystemSimulator
from repro.workloads.suite import build_trace, get_workload

DESIGNS = ("vipt", "pipt", "vivt", "seesaw")
WORKLOADS = ("redis", "gups")
SEED = 42
ACCURACY_LENGTH = 12_000
GOLDEN_LENGTH = 6_000
ERROR_BUDGET = 0.05


def _headline(result_dict, metric):
    """Extract a headline metric from a result dict (miss rate = 1 - hit)."""
    if metric == "l1_miss_rate":
        return 1.0 - float(result_dict["l1_hit_rate"])
    return float(result_dict[metric])


def _run_pair(design, workload, length, plan):
    """One (exact, sampled) result pair on the same trace and config."""
    trace = build_trace(get_workload(workload), length=length, seed=SEED)
    config = SystemConfig(l1_design=design, seed=SEED)
    exact = SystemSimulator(config, trace).run()
    sampled = simulate_sampled(config, trace, plan)
    return exact, sampled


def _strip_sampling(result_dict):
    return {k: v for k, v in result_dict.items() if k != "sampling"}


class TestAccuracyMatrix:
    """Sampled vs exact on the full golden matrix, default plan."""

    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_headline_metrics_within_bounds_and_budget(self, design,
                                                       workload):
        exact, sampled = _run_pair(design, workload, ACCURACY_LENGTH,
                                   SamplingPlan())
        block = sampled.sampling
        assert block["sampled"] is True
        assert not block["exact"], (
            "accuracy matrix must exercise genuine sampling — "
            f"{block['num_intervals']} intervals vs K={block['max_clusters']}")
        assert block["coverage"] < 1.0
        exact_dict, sampled_dict = exact.to_dict(), sampled.to_dict()
        bounds = block["error_bounds"]
        for metric in HEADLINE_METRICS:
            err = relative_error(_headline(sampled_dict, metric),
                                 _headline(exact_dict, metric),
                                 rate_metric=metric.endswith("_rate"))
            assert err <= bounds[metric], (
                f"{design}-{workload} {metric}: error {err:.4f} exceeds "
                f"reported bound {bounds[metric]:.4f}")
            assert err <= ERROR_BUDGET, (
                f"{design}-{workload} {metric}: error {err:.4f} exceeds "
                f"the {ERROR_BUDGET:.0%} budget")

    @pytest.mark.parametrize("design", DESIGNS)
    def test_bounds_are_reported_for_every_headline_metric(self, design):
        _, sampled = _run_pair(design, "gups", ACCURACY_LENGTH,
                               SamplingPlan())
        bounds = sampled.sampling["error_bounds"]
        assert set(bounds) == set(HEADLINE_METRICS)
        for metric, bound in bounds.items():
            assert 0.0 < bound <= 0.5, (metric, bound)


class TestDegenerateExactness:
    """Plans that cannot sample must reproduce the exact lane bitwise."""

    @pytest.mark.parametrize("design", DESIGNS)
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_cluster_budget_covers_all_intervals(self, design, workload):
        # At 6,000 refs the default plan yields 10 intervals <= K=10:
        # every interval is its own singleton representative.
        exact, sampled = _run_pair(design, workload, GOLDEN_LENGTH,
                                   SamplingPlan())
        block = sampled.sampling
        assert block["exact"] is True
        assert block["coverage"] == 1.0
        assert block["num_clusters"] == block["num_intervals"]
        assert all(e == 0.0 for e in block["error_bounds"].values())
        assert _strip_sampling(sampled.to_dict()) == exact.to_dict()

    def test_interval_spanning_whole_trace(self):
        plan = SamplingPlan(interval_size=GOLDEN_LENGTH * 2)
        exact, sampled = _run_pair("seesaw", "redis", GOLDEN_LENGTH, plan)
        assert sampled.sampling["exact"] is True
        assert sampled.sampling["num_intervals"] == 1
        assert _strip_sampling(sampled.to_dict()) == exact.to_dict()

    def test_degenerate_lane_matches_golden_fixture(self):
        """The degenerate lane agrees with the committed golden result,
        not merely with a fresh exact run."""
        import json
        from pathlib import Path
        golden = json.loads(
            (Path(__file__).parent / "golden" / "vipt-redis.json")
            .read_text())
        _, sampled = _run_pair("vipt", "redis", GOLDEN_LENGTH,
                               SamplingPlan())
        sampled_dict = _strip_sampling(sampled.to_dict())
        for metric in HEADLINE_METRICS:
            assert _headline(sampled_dict, metric) == pytest.approx(
                _headline(golden, metric), rel=1e-12)
