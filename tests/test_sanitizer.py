"""Tests for the runtime invariant sanitizer.

Two halves: deliberately corrupted state must raise
:class:`~repro.devtools.sanitize.SanitizerError` with a useful message,
and an uncorrupted full simulation must run green with every check armed
(via ``SystemConfig(sanitize=True)`` and via ``REPRO_SANITIZE=1``).
"""

import pytest

from repro.cache.vipt import L1Timing, ViptL1Cache
from repro.devtools import sanitize
from repro.devtools.sanitize import SanitizerError
from repro.mem.address import PageSize
from repro.mem.page_table import PageTable
from repro.sim.config import SystemConfig
from repro.sim.system import SystemSimulator
from repro.tlb.hierarchy import SplitTLBHierarchy
from repro.workloads.suite import build_trace, get_workload

TIMING = L1Timing(base_hit_cycles=4, super_hit_cycles=3)


@pytest.fixture(autouse=True)
def _restore_override():
    yield
    sanitize.reset()


def make_l1(name="l1"):
    return ViptL1Cache(32 * 1024, TIMING, name=name)


class TestActivation:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
        assert not sanitize.enabled()

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        assert sanitize.enabled()
        monkeypatch.setenv(sanitize.ENV_VAR, "0")
        assert not sanitize.enabled()

    def test_programmatic_override_wins(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        sanitize.enable(False)
        assert not sanitize.enabled()
        sanitize.reset()
        assert sanitize.enabled()

    def test_sanitizer_error_is_assertion_error(self):
        assert issubclass(SanitizerError, AssertionError)


class TestLineAndTransitionChecks:
    def test_corrupt_line_state_raises(self):
        cache = make_l1()
        line = cache.store.fill(0x4000)
        line.state = "Q"
        with pytest.raises(SanitizerError, match="illegal"):
            sanitize.check_line_state(line)

    def test_invalid_line_with_live_state_raises(self):
        cache = make_l1()
        line = cache.store.fill(0x4000)
        line.valid = False
        with pytest.raises(SanitizerError, match="invalid line"):
            sanitize.check_line_state(line)

    def test_healthy_line_passes(self):
        cache = make_l1()
        sanitize.check_line_state(cache.store.fill(0x4000))

    def test_illegal_moesi_transition_raises(self):
        from repro.coherence.protocol import MoesiState, ProtocolEvent
        sanitize.check_transition(MoesiState.INVALID,
                                  ProtocolEvent.LOCAL_READ)
        with pytest.raises(SanitizerError, match="illegal MOESI"):
            sanitize.check_transition("Z", ProtocolEvent.LOCAL_READ)


class TestCoherenceChecks:
    PA = 0x7000

    def test_two_dirty_copies_raise(self):
        caches = [make_l1("c0"), make_l1("c1")]
        for cache in caches:
            cache.store.fill(self.PA, dirty=True)
        with pytest.raises(SanitizerError, match="single-writer"):
            sanitize.check_coherence_entry(caches, self.PA, sharers={0, 1},
                                           owner=None, context="test")

    def test_untracked_holder_raises(self):
        caches = [make_l1("c0"), make_l1("c1")]
        caches[0].store.fill(self.PA)
        caches[1].store.fill(self.PA)
        with pytest.raises(SanitizerError, match="unknown to the directory"):
            sanitize.check_coherence_entry(caches, self.PA, sharers={0},
                                           owner=None, context="test")

    def test_consistent_entry_passes(self):
        caches = [make_l1("c0"), make_l1("c1")]
        caches[0].store.fill(self.PA, dirty=True)
        caches[1].store.fill(self.PA)
        caches[1].store.set_at(
            caches[1].store.set_index(self.PA)).lines[0].state = "S"
        sanitize.check_coherence_entry(caches, self.PA, sharers={1},
                                       owner=0, context="test")

    def test_stale_copy_after_write_raises(self):
        caches = [make_l1("c0"), make_l1("c1")]
        caches[0].store.fill(self.PA, dirty=True)
        caches[1].store.fill(self.PA)
        with pytest.raises(SanitizerError, match="stale copies"):
            sanitize.check_write_exclusivity(caches, self.PA, writer=0,
                                             context="test")
        caches[1].store.invalidate_line(self.PA)
        sanitize.check_write_exclusivity(caches, self.PA, writer=0,
                                         context="test")


class TestViptIndexChecks:
    def test_index_mismatch_raises(self):
        cache = make_l1()
        with pytest.raises(SanitizerError, match="VIPT constraint"):
            sanitize.check_vipt_index(cache.store, 0x0, 0x40, cache.name)

    def test_matching_index_passes(self):
        cache = make_l1()
        sanitize.check_vipt_index(cache.store, 0x1_0040, 0x9_0040,
                                  cache.name)


class TestTranslationChecks:
    VA = 0x10_0000_0000

    def _hierarchy(self):
        table = PageTable()
        table.map(self.VA, 0x2000_0000, PageSize.BASE_4KB)
        return table, SplitTLBHierarchy(table, sanitize=True)

    def test_stale_tlb_after_remap_raises(self):
        table, tlbs = self._hierarchy()
        tlbs.translate(self.VA)              # warms the L1 TLB
        table.unmap(self.VA, PageSize.BASE_4KB)
        table.map(self.VA, 0x3000_0000, PageSize.BASE_4KB)
        with pytest.raises(SanitizerError, match="shootdown"):
            tlbs.translate(self.VA)

    def test_stale_tlb_after_unmap_raises(self):
        table, tlbs = self._hierarchy()
        tlbs.translate(self.VA)
        table.unmap(self.VA, PageSize.BASE_4KB)
        with pytest.raises(SanitizerError, match="unmap"):
            tlbs.translate(self.VA)

    def test_invalidated_tlb_passes(self):
        table, tlbs = self._hierarchy()
        tlbs.translate(self.VA)
        table.unmap(self.VA, PageSize.BASE_4KB)
        table.map(self.VA, 0x3000_0000, PageSize.BASE_4KB)
        tlbs.invalidate(self.VA, PageSize.BASE_4KB)
        result = tlbs.translate(self.VA)
        assert result.physical_address == 0x3000_0000


class TestResultChecks:
    @pytest.fixture(scope="class")
    def result(self):
        trace = build_trace(get_workload("redis"), length=3000, seed=5)
        return SystemSimulator(SystemConfig(sanitize=True), trace).run()

    def test_clean_result_validates(self, result):
        sanitize.validate_result(result)

    def test_corrupt_hit_counter_raises(self, result):
        import copy
        broken = copy.deepcopy(result)
        broken.l1_hits += 1
        with pytest.raises(SanitizerError, match="memory_references"):
            sanitize.validate_result(broken)

    def test_negative_counter_raises(self, result):
        import copy
        broken = copy.deepcopy(result)
        broken.l1_misses = -3
        with pytest.raises(SanitizerError, match="negative"):
            sanitize.validate_result(broken)

    def test_corrupt_energy_component_raises(self, result):
        import copy
        broken = copy.deepcopy(result)
        broken.energy.dram_nj = float("nan")
        with pytest.raises(SanitizerError, match="energy component"):
            sanitize.validate_result(broken)
        broken.energy.dram_nj = -1.0
        with pytest.raises(SanitizerError, match="energy component"):
            broken.energy.validate()


class TestSanitizedSimulations:
    @pytest.mark.parametrize("design", ["seesaw", "vipt", "pipt", "vivt"])
    def test_small_sim_green_with_config_flag(self, design):
        trace = build_trace(get_workload("redis"), length=3000, seed=5)
        config = SystemConfig(l1_design=design, sanitize=True)
        result = SystemSimulator(config, trace).run()
        assert result.l1_hits + result.l1_misses == result.memory_references

    def test_multithreaded_sim_green(self):
        trace = build_trace(get_workload("nutch"), length=3000, seed=5)
        result = SystemSimulator(SystemConfig(sanitize=True), trace).run()
        assert result.coherence_probes > 0

    def test_snoop_sim_green(self):
        trace = build_trace(get_workload("nutch"), length=3000, seed=5)
        config = SystemConfig(coherence="snoop", sanitize=True)
        result = SystemSimulator(config, trace).run()
        assert result.l1_hits + result.l1_misses == result.memory_references

    def test_env_var_path_green(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_VAR, "1")
        trace = build_trace(get_workload("redis"), length=2000, seed=5)
        result = SystemSimulator(SystemConfig(), trace).run()
        # warmup references are reset out of the counters
        assert 0 < result.memory_references < len(trace)
        assert result.l1_hits + result.l1_misses == result.memory_references
