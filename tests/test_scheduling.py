"""Tests for the variable-hit-latency scheduler model (paper §IV-B3)."""

import pytest

from repro.core.scheduling import (
    HitSpeculationPolicy,
    SchedulerModel,
    SpeculationOutcome,
)


def make(policy=HitSpeculationPolicy.ADAPTIVE, fast=1, slow=2, penalty=1):
    return SchedulerModel(fast_cycles=fast, slow_cycles=slow, policy=policy,
                          squash_penalty_cycles=penalty)


class TestConstruction:
    def test_fast_cannot_exceed_slow(self):
        with pytest.raises(ValueError):
            SchedulerModel(fast_cycles=3, slow_cycles=2)


class TestAssumption:
    def test_always_fast(self):
        scheduler = make(HitSpeculationPolicy.ALWAYS_FAST)
        assert scheduler.assume_fast(0, 16)

    def test_always_slow(self):
        scheduler = make(HitSpeculationPolicy.ALWAYS_SLOW)
        assert not scheduler.assume_fast(16, 16)

    def test_adaptive_threshold_is_quarter_capacity(self):
        # Paper: "setting the threshold of the counter to a quarter of the
        # number of superpage TLB entries achieves good performance".
        scheduler = make(HitSpeculationPolicy.ADAPTIVE)
        assert not scheduler.assume_fast(3, 16)
        assert scheduler.assume_fast(4, 16)

    def test_assumption_stats(self):
        scheduler = make(HitSpeculationPolicy.ADAPTIVE)
        scheduler.assume_fast(16, 16)
        scheduler.assume_fast(0, 16)
        assert scheduler.stats.fast_assumptions == 1
        assert scheduler.stats.slow_assumptions == 1


class TestResolveHit:
    def test_fast_assumption_fast_hit(self):
        outcome = make().resolve_hit(assumed_fast=True, actual_latency=1)
        assert outcome.effective_latency_cycles == 1
        assert not outcome.squashed

    def test_fast_assumption_slow_hit_squashes(self):
        scheduler = make(penalty=1)
        outcome = scheduler.resolve_hit(assumed_fast=True, actual_latency=2)
        assert outcome.squashed
        assert outcome.effective_latency_cycles == 3
        assert scheduler.stats.squashes == 1

    def test_penalty_capped_by_speculation_window(self):
        scheduler = make(fast=1, slow=2, penalty=10)
        outcome = scheduler.resolve_hit(assumed_fast=True, actual_latency=2)
        # Only one cycle of wakeups could have issued early.
        assert outcome.effective_latency_cycles == 3

    def test_slow_assumption_forfeits_fast_hit(self):
        # Paper §IV-B3: "a faster hit ... may not translate to overall
        # runtime reduction, but will still provide the same energy
        # benefits."
        outcome = make().resolve_hit(assumed_fast=False, actual_latency=1)
        assert outcome.effective_latency_cycles == 2
        assert not outcome.squashed

    def test_slow_assumption_slow_hit(self):
        outcome = make().resolve_hit(assumed_fast=False, actual_latency=2)
        assert outcome.effective_latency_cycles == 2


class TestResolveMiss:
    def test_miss_charges_no_extra_penalty(self):
        outcome = make().resolve_miss(assumed_fast=True, total_latency=40)
        assert outcome.effective_latency_cycles == 40
        assert not outcome.squashed


class TestHighFrequencyConfigs:
    def test_128kb_at_4ghz_window(self):
        # Table III: base 42, super 4 at 4GHz — big speculation window.
        scheduler = SchedulerModel(fast_cycles=4, slow_cycles=42,
                                   squash_penalty_cycles=3)
        outcome = scheduler.resolve_hit(assumed_fast=True, actual_latency=42)
        assert outcome.effective_latency_cycles == 45
