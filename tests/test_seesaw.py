"""Tests for the SEESAW L1 cache — the paper's core contribution.

The Table I lookup anatomy, the 4way insertion policy, single-partition
coherence probes, TFT integration with the TLB hierarchy and OS hooks, the
promotion sweep, and the way-predictor combination are each pinned down.
"""

import pytest

from repro.cache.vipt import L1Timing
from repro.cache.way_predictor import MRUWayPredictor
from repro.core.insertion import InsertionPolicy
from repro.core.seesaw import SeesawL1Cache
from repro.mem.address import PAGE_SIZE_2MB, PageSize
from repro.tlb.tlb import TLBEntry

#: a VA inside a 2MB-aligned region, plus the matching PA with identical
#: low 21 bits (as a superpage mapping guarantees).
SUPER_VA = 0x4000_0000 + 0x1040
SUPER_PA = 0x0820_0000 + 0x1040


def make_cache(size_kb=32, timing=None, **kw):
    timing = timing or L1Timing(base_hit_cycles=2, super_hit_cycles=1)
    return SeesawL1Cache(size_kb * 1024, timing, **kw)


def known_superpage(cache, va=SUPER_VA):
    """Mark the VA's 2MB region as superpage-backed in the TFT."""
    cache.tft.fill(va)


class TestGeometry:
    def test_paper_configurations(self):
        for size_kb, ways, partitions in [(32, 8, 2), (64, 16, 4),
                                          (128, 32, 8)]:
            cache = make_cache(size_kb)
            assert cache.ways == ways
            assert cache.partitioning.num_partitions == partitions
            assert cache.store.num_sets == 64

    def test_small_cache_degenerates_to_one_partition(self):
        cache = SeesawL1Cache(16 * 1024,
                              L1Timing(base_hit_cycles=1, super_hit_cycles=1))
        assert cache.partitioning.num_partitions == 1


class TestTableOneLookupAnatomy:
    """Each row of the paper's Table I."""

    def test_row1_tft_hit_cache_hit_fast(self):
        cache = make_cache()
        known_superpage(cache)
        cache.fill(SUPER_PA, PageSize.SUPER_2MB)
        result = cache.access(SUPER_VA, SUPER_PA, PageSize.SUPER_2MB)
        assert result.hit and result.tft_hit and result.fast_path
        assert result.latency_cycles == 1       # fast hit
        assert result.ways_probed == 4          # one partition
        assert cache.seesaw_stats.fast_hits == 1

    def test_row2_tft_hit_cache_miss_energy_only(self):
        cache = make_cache()
        known_superpage(cache)
        result = cache.access(SUPER_VA, SUPER_PA, PageSize.SUPER_2MB)
        assert not result.hit and result.tft_hit
        assert result.ways_probed == 4          # energy saving survives
        # ... but the miss is declared at the same tag-path point as the
        # baseline (no latency saving on misses, per Table I's savings
        # column).
        assert result.miss_detect_cycles == cache.timing.miss_detect_cycles()
        assert cache.seesaw_stats.fast_misses == 1

    def test_row3_tft_miss_superpage_reads_whole_set(self):
        cache = make_cache()          # TFT empty
        cache.fill(SUPER_PA, PageSize.SUPER_2MB)
        result = cache.access(SUPER_VA, SUPER_PA, PageSize.SUPER_2MB)
        assert result.hit and not result.tft_hit and not result.fast_path
        assert result.latency_cycles == 2
        assert result.ways_probed == 8
        assert cache.seesaw_stats.tft_missed_superpage_l1_hits == 1

    def test_row4_base_page_behaves_like_vipt(self):
        cache = make_cache()
        cache.fill(0x9000, PageSize.BASE_4KB)
        result = cache.access(0x1000, 0x9000, PageSize.BASE_4KB)
        assert result.hit and not result.tft_hit
        assert result.latency_cycles == 2
        assert result.ways_probed == 8

    def test_tft_never_hits_for_base_pages(self):
        cache = make_cache()
        # TFT coherence is maintained by the OS hooks; a hit for a 4KB
        # access would be a wiring bug, caught by the assertion.
        result = cache.access(0x1000, 0x9000, PageSize.BASE_4KB)
        assert result.tft_hit is False


class TestBasePageCrossPartitionHit:
    def test_base_page_found_in_other_partition(self):
        """A base page's VA partition bit can differ from its PA's; the
        cycle-2 read of the remaining partitions must find it."""
        cache = make_cache()
        pa = 0x0000_9040            # PA bit 12 = 1? 0x9040 -> bit12=1
        cache.fill(pa, PageSize.BASE_4KB)
        va = 0x0000_0040            # VA bit 12 = 0: wrong partition guess
        result = cache.access(va, pa, PageSize.BASE_4KB)
        assert result.hit
        assert result.ways_probed == 8


class TestInsertionPolicy:
    def test_4way_insertion_uses_pa_partition(self):
        cache = make_cache()
        cache.fill(0x1040, PageSize.BASE_4KB)   # PA bit 12 = 1
        cache_set = cache.store.set_at(cache.store.set_index(0x1040))
        occupied = [w for w, line in enumerate(cache_set.lines) if line.valid]
        assert occupied == [4]

    def test_4way_insertion_same_for_superpages(self):
        cache = make_cache()
        cache.fill(SUPER_PA, PageSize.SUPER_2MB)
        partition = cache.partitioning.partition_of(SUPER_PA)
        cache_set = cache.store.set_at(cache.store.set_index(SUPER_PA))
        occupied = [w for w, line in enumerate(cache_set.lines) if line.valid]
        assert occupied[0] in cache.partitioning.ways_of_partition(partition)

    def test_4way_8way_spreads_base_pages_globally(self):
        cache = make_cache(insertion=InsertionPolicy.FOUR_EIGHT_WAY)
        stride = 64 * 64 * 8        # same set, same partition bits
        for i in range(8):
            cache.fill(0x0 + i * stride, PageSize.BASE_4KB)
        cache_set = cache.store.set_at(0)
        assert sum(line.valid for line in cache_set.lines) == 8

    def test_4way_limits_effective_associativity(self):
        cache = make_cache()        # 4way insertion
        stride = 64 * 64 * 8
        for i in range(8):
            cache.fill(i * stride, PageSize.BASE_4KB)
        cache_set = cache.store.set_at(0)
        # All eight lines map to partition 0, which holds only 4 ways.
        assert sum(line.valid for line in cache_set.lines) == 4


class TestCoherence:
    def test_probe_touches_single_partition_under_4way(self):
        cache = make_cache()
        cache.fill(0x9000, PageSize.BASE_4KB, dirty=True)
        result = cache.coherence_probe(0x9000)
        assert result.present and result.dirty
        assert result.ways_probed == 4        # paper §IV-C1
        assert cache.seesaw_stats.coherence_probes == 1

    def test_probe_full_set_under_4way_8way(self):
        cache = make_cache(insertion=InsertionPolicy.FOUR_EIGHT_WAY)
        result = cache.coherence_probe(0x9000)
        assert result.ways_probed == 8

    def test_invalidating_probe(self):
        cache = make_cache()
        cache.fill(0x9000, PageSize.BASE_4KB)
        cache.coherence_probe(0x9000, invalidate=True)
        assert not cache.coherence_probe(0x9000).present

    def test_base_page_probes_also_narrow(self):
        """The coherence saving applies to base pages too — the paper's
        point 3 in §I."""
        cache = make_cache()
        cache.fill(0x0, PageSize.BASE_4KB)
        assert cache.coherence_probe(0x0).ways_probed == 4


class TestTftIntegration:
    def test_tlb_fill_hook_populates_tft(self):
        cache = make_cache()
        entry = TLBEntry(virtual_page=SUPER_VA >> 21,
                         physical_page=SUPER_PA >> 21,
                         page_size=PageSize.SUPER_2MB)
        cache.on_tlb_fill(entry)
        assert cache.tft.probe(SUPER_VA)

    def test_4kb_tlb_fill_does_not_touch_tft(self):
        cache = make_cache()
        entry = TLBEntry(virtual_page=0x1000 >> 12, physical_page=0x9000 >> 12,
                         page_size=PageSize.BASE_4KB)
        cache.on_tlb_fill(entry)
        assert cache.tft.occupancy() == 0

    def test_splinter_invalidation_hook(self):
        cache = make_cache()
        known_superpage(cache)
        base = SUPER_VA & ~(PAGE_SIZE_2MB - 1)
        cache.on_translation_invalidated(base, PageSize.SUPER_2MB)
        assert not cache.tft.probe(SUPER_VA)

    def test_base_page_invalidation_leaves_tft(self):
        cache = make_cache()
        known_superpage(cache)
        cache.on_translation_invalidated(0x1000, PageSize.BASE_4KB)
        assert cache.tft.probe(SUPER_VA)

    def test_context_switch_flushes_tft(self):
        cache = make_cache()
        known_superpage(cache)
        cache.on_context_switch()
        assert cache.tft.occupancy() == 0


class TestPromotionSweep:
    def test_sweep_evicts_lines_of_old_frames(self):
        cache = make_cache()
        old_frame = 0x0070_0000
        for offset in range(0, 4096, 64):
            cache.fill(old_frame + offset, PageSize.BASE_4KB)
        cache.on_region_promoted(0x4000_0000, [old_frame])
        assert cache.store.valid_lines() == 0
        assert cache.seesaw_stats.promotion_sweeps == 1
        assert cache.seesaw_stats.lines_swept == 64
        assert cache.seesaw_stats.promotion_sweep_cycles == 175

    def test_sweep_leaves_unrelated_lines(self):
        cache = make_cache()
        cache.fill(0x12340, PageSize.BASE_4KB)
        cache.on_region_promoted(0x4000_0000, [0x0070_0000])
        assert cache.store.valid_lines() == 1


class TestWayPredictionCombination:
    def test_correct_prediction_probes_one_way(self):
        predictor = MRUWayPredictor(64, 8)
        cache = make_cache(way_predictor=predictor)
        known_superpage(cache)
        cache.fill(SUPER_PA, PageSize.SUPER_2MB)
        cache.access(SUPER_VA, SUPER_PA, PageSize.SUPER_2MB)  # trains MRU
        result = cache.access(SUPER_VA, SUPER_PA, PageSize.SUPER_2MB)
        assert result.way_prediction_correct
        assert result.ways_probed == 1
        assert result.latency_cycles == 1

    def test_misprediction_pays_penalty_within_partition(self):
        predictor = MRUWayPredictor(64, 8)
        cache = make_cache(way_predictor=predictor, wp_mispredict_penalty=1)
        known_superpage(cache)
        line_a = SUPER_PA
        line_b = SUPER_PA + 8 * 64 * 64   # same set & partition bits
        cache.tft.fill(SUPER_VA + 8 * 64 * 64)
        cache.fill(line_a, PageSize.SUPER_2MB)
        cache.fill(line_b, PageSize.SUPER_2MB)
        cache.access(SUPER_VA, line_a, PageSize.SUPER_2MB)
        result = cache.access(SUPER_VA + 8 * 64 * 64, line_b,
                              PageSize.SUPER_2MB)
        assert result.way_prediction_correct is False
        assert result.latency_cycles == 2       # fast (1) + penalty (1)
        assert result.ways_probed == 4          # partition re-read only

    def test_prediction_over_full_set_on_tft_miss_path(self):
        """Base-page accesses use plain way prediction over the whole set
        (paper §IV-B2): correct -> one way read, wrong -> full set plus
        the replay penalty."""
        predictor = MRUWayPredictor(64, 8)
        cache = make_cache(way_predictor=predictor, wp_mispredict_penalty=1)
        cache.fill(0x9000, PageSize.BASE_4KB)
        first = cache.access(0x1000, 0x9000, PageSize.BASE_4KB)
        repeat = cache.access(0x1000, 0x9000, PageSize.BASE_4KB)
        assert repeat.way_prediction_correct
        assert repeat.ways_probed == 1
        assert repeat.latency_cycles == 2


class TestStats:
    def test_superpage_miss_fraction_for_fig13(self):
        cache = make_cache()
        known_superpage(cache)
        other_va = SUPER_VA + 5 * PAGE_SIZE_2MB   # not in TFT
        cache.access(SUPER_VA, SUPER_PA, PageSize.SUPER_2MB)       # TFT hit
        cache.access(other_va, SUPER_PA + 0x40_0000,
                     PageSize.SUPER_2MB)                            # TFT miss
        stats = cache.seesaw_stats
        assert stats.superpage_accesses == 2
        assert stats.tft_missed_superpage_accesses == 1
        assert stats.tft_superpage_miss_fraction() == pytest.approx(0.5)

    def test_coherence_ways_accounting(self):
        cache = make_cache()
        cache.coherence_probe(0x9000)
        cache.coherence_probe(0xA000)
        assert cache.seesaw_stats.coherence_ways_probed == 8
