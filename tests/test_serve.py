"""Tests for the ``repro serve`` simulation service."""

import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.resilience.errors import (
    JobNotFound,
    PoolOverloaded,
    QuotaExceeded,
)
from repro.serve.cache import ResultCache, result_key
from repro.serve.pending import PendingPool
from repro.serve.protocol import (
    INVALID_PARAMS,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    ProtocolError,
    check_envelope,
    parse_request,
    validate_params,
)
from repro.serve.quota import QuotaRegistry, TokenBucket

SMALL = {"workload": "gups", "length": 1500}


# --------------------------------------------------------------- protocol

class TestProtocol:
    def test_bad_json_is_parse_error(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b"{nope")
        assert info.value.code == PARSE_ERROR

    def test_non_object_is_invalid_request(self):
        with pytest.raises(ProtocolError) as info:
            parse_request(b'"hello"')
        assert info.value.code == INVALID_REQUEST

    def test_unknown_method(self):
        with pytest.raises(ProtocolError) as info:
            check_envelope({"jsonrpc": "2.0", "id": 1, "method": "explode"})
        assert info.value.code == METHOD_NOT_FOUND
        assert "run" in str(info.value)  # names the valid methods

    def test_run_folds_to_one_cell_sweep(self):
        out = validate_params("run", {"workload": "gups"})
        assert out["workloads"] == ["gups"]
        assert out["designs"] == ["seesaw"]
        assert out["length"] == 20_000 and out["seed"] == 42

    def test_unknown_param_names_valid_forms(self):
        with pytest.raises(ProtocolError) as info:
            validate_params("sweep", {"workloads": ["gups"], "bogus": 1})
        assert info.value.code == INVALID_PARAMS
        assert "bogus" in str(info.value)
        assert "designs" in str(info.value)  # the valid forms

    def test_unknown_workload_names_suite(self):
        with pytest.raises(ProtocolError) as info:
            validate_params("sweep", {"workloads": ["doom"]})
        assert "gups" in str(info.value)

    def test_out_of_range_memhog(self):
        with pytest.raises(ProtocolError) as info:
            validate_params("run", {"workload": "gups", "memhog": 0.9})
        assert info.value.code == INVALID_PARAMS

    def test_bare_token_skips_sim_validation(self):
        token = "ab" * 32  # well-formed 64-hex-char digest
        out = validate_params("sweep", {"resume_token": token})
        assert out["resume_token"] == token
        assert "workloads" not in out

    def test_malformed_resume_token_rejected(self):
        # Tokens are digests; anything else — especially path
        # separators — must die in validation, before the server ever
        # builds a spool path from it.
        for bad in ("abc123", "../../etc/passwd", "A" * 64,
                    "ab" * 31 + "/x", ""):
            with pytest.raises(ProtocolError) as info:
                validate_params("sweep", {"resume_token": bad})
            assert info.value.code == INVALID_PARAMS

    def test_traversal_token_never_touches_fs(self, tmp_path):
        from repro.serve.jobs import load_request_params
        outside = tmp_path / "outside.request.json"
        outside.write_text(json.dumps({"workloads": ["gups"]}))
        spool = tmp_path / "spool"
        spool.mkdir()
        with pytest.raises(JobNotFound):
            load_request_params(spool, "../outside")

    def test_sweep_defaults_cover_full_suite(self):
        from repro.workloads.suite import WORKLOADS
        out = validate_params("sweep", {})
        assert out["workloads"] == sorted(WORKLOADS)
        assert out["designs"] == ["vipt", "seesaw"]


class TestRequestDigest:
    def test_scheduling_knobs_do_not_change_identity(self):
        from repro.serve.jobs import request_digest
        a = validate_params("run", dict(SMALL))
        b = validate_params("run", dict(SMALL, jobs=4, wait=False,
                                        deadline_s=9.0))
        assert request_digest(a) == request_digest(b)

    def test_sim_params_change_identity(self):
        from repro.serve.jobs import request_digest
        a = validate_params("run", dict(SMALL))
        b = validate_params("run", dict(SMALL, seed=43))
        assert request_digest(a) != request_digest(b)


# ------------------------------------------------------------------ quota

class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestQuota:
    def test_bucket_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=2, refill_per_s=1.0, clock=clock)
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        ok, retry = bucket.try_take()
        assert not ok and retry == pytest.approx(1.0)
        clock.now += 1.0
        assert bucket.try_take() == (True, 0.0)

    def test_zero_refill_reports_infinite_wait(self):
        bucket = TokenBucket(capacity=1, refill_per_s=0.0,
                             clock=FakeClock())
        bucket.try_take()
        ok, retry = bucket.try_take()
        assert not ok and retry == float("inf")

    def test_registry_rejects_with_retry_hint(self):
        clock = FakeClock()
        registry = QuotaRegistry(capacity=1, refill_per_s=2.0, clock=clock)
        registry.take("alice")
        with pytest.raises(QuotaExceeded) as info:
            registry.take("alice")
        assert info.value.rpc_code == -32002
        assert info.value.data["retry_after_s"] == pytest.approx(0.5)
        # other clients are unaffected
        registry.take("bob")
        assert registry.snapshot()["rejected"] == 1

    def test_deterministic_under_fake_clock(self):
        outcomes = []
        for _ in range(2):
            clock = FakeClock()
            registry = QuotaRegistry(capacity=3, refill_per_s=1.0,
                                     clock=clock)
            grants = []
            for step in range(8):
                clock.now += 0.4
                try:
                    registry.take("c")
                    grants.append(True)
                except QuotaExceeded:
                    grants.append(False)
            outcomes.append(grants)
        assert outcomes[0] == outcomes[1]


# ----------------------------------------------------------- pending pool

class TestPendingPool:
    def test_overload_is_structured(self):
        pool = PendingPool(max_pending=1)
        pool.admit("a", "run", {}, "d1")
        with pytest.raises(PoolOverloaded) as info:
            pool.admit("a", "run", {}, "d2")
        assert info.value.rpc_code == -32001
        assert info.value.data["max_pending"] == 1
        assert "retry_after_s" in info.value.data

    def test_finished_jobs_free_the_pool(self):
        pool = PendingPool(max_pending=1)
        job = pool.admit("a", "run", {}, "d1")
        pool.mark(job, "done", {"state": "done"})
        pool.admit("a", "run", {}, "d2")  # does not raise

    def test_find_by_id_or_token(self):
        pool = PendingPool()
        job = pool.admit("a", "run", {}, "digest-xyz")
        assert pool.find(job.id) is job
        assert pool.find("digest-xyz") is job
        with pytest.raises(JobNotFound):
            pool.find("nope")

    def test_interrupt_active_flips_seams(self):
        pool = PendingPool()
        running = pool.admit("a", "run", {}, "d1")
        finished = pool.admit("a", "run", {}, "d2")
        pool.mark(finished, "done")
        flipped = pool.interrupt_active(signal.SIGTERM)
        assert flipped == [running]
        assert running.interrupt.signum == signal.SIGTERM
        assert finished.interrupt.signum is None


# ------------------------------------------------------------------ cache

class TestResultCache:
    def test_memory_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh a
        cache.put("c", {"v": 3})  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.hits == 2 and cache.misses == 1

    def test_disk_tier_survives_new_instance(self, tmp_path):
        first = ResultCache(capacity=4, directory=tmp_path)
        first.put("k", {"ipc": 1.5})
        second = ResultCache(capacity=4, directory=tmp_path)
        assert second.get("k") == {"ipc": 1.5}

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(capacity=4, directory=tmp_path)
        cache.put("k", {"ipc": 1.5})
        path = tmp_path / "k.result.json"
        path.write_text(path.read_text()[:-20] + "GARBAGE")
        fresh = ResultCache(capacity=4, directory=tmp_path)
        assert fresh.get("k") is None

    def test_result_key_is_order_sensitive(self):
        assert result_key("aa", "bb") != result_key("bb", "aa")


# -------------------------------------------------- deterministic jitter

class TestRetryJitter:
    def test_delay_sequence_is_seed_deterministic(self):
        from repro.resilience.runner import retry_delay, retry_rng_for
        sequences = []
        for _ in range(2):
            rng = retry_rng_for(42)
            sequences.append([retry_delay(0.25, attempt, rng)
                              for attempt in range(1, 6)])
        assert sequences[0] == sequences[1]
        # a different seed jitters differently
        other = [retry_delay(0.25, attempt, retry_rng_for(43))
                 for attempt in range(1, 6)]
        assert other != sequences[0]

    def test_jitter_bounds_and_cap(self):
        from repro.resilience.runner import (
            MAX_RETRY_BACKOFF_S,
            retry_delay,
            retry_rng_for,
        )
        rng = retry_rng_for(7)
        for attempt in range(1, 12):
            base = 0.25 * 2 ** (attempt - 1)
            delay = retry_delay(0.25, attempt, rng)
            assert delay <= MAX_RETRY_BACKOFF_S
            if base <= MAX_RETRY_BACKOFF_S:
                assert delay >= min(base, MAX_RETRY_BACKOFF_S) or \
                    delay == MAX_RETRY_BACKOFF_S
                if base * 1.5 < MAX_RETRY_BACKOFF_S:
                    assert base <= delay <= base * 1.5

    def test_no_rng_means_plain_exponential(self):
        from repro.resilience.runner import retry_delay
        assert retry_delay(0.25, 1) == 0.25
        assert retry_delay(0.25, 3) == 1.0

    def test_sweep_jitter_reproducible_across_runs(self, tmp_path,
                                                   monkeypatch):
        """Two identical chaos-retry sweeps sleep identical schedules."""
        from repro import cli

        schedules = []
        for attempt in range(2):
            sleeps = []
            monkeypatch.setattr(
                "repro.resilience.runner.time.sleep",
                lambda s: sleeps.append(round(s, 6)))
            journal = tmp_path / f"jitter{attempt}.jsonl"
            assert cli.main(
                ["sweep", "--workloads", "gups", "--length", "1500",
                 "--isolate", "--retries", "2", "--chaos", "worker-kill@0",
                 "--journal", str(journal)]) == 0
            schedules.append(sleeps)
        assert schedules[0]  # the kill forced at least one retry sleep
        assert schedules[0] == schedules[1]


# ------------------------------------------------------------ the server

@pytest.fixture
def serve(tmp_path):
    """Factory: boot an in-thread server over a shared spool."""
    import contextlib

    from repro.serve.server import ServeConfig, serve_in_thread

    stack = contextlib.ExitStack()

    def _boot(**overrides):
        options = dict(port=0, jobs=2, spool=tmp_path / "spool",
                       timeout_s=60.0)
        options.update(overrides)
        return stack.enter_context(serve_in_thread(ServeConfig(**options)))

    yield _boot
    stack.close()


def _client(server, name="test"):
    from repro.serve.client import ServeClient
    return ServeClient(port=server.bound_port, client_id=name,
                       timeout_s=120.0)


class TestServer:
    def test_health_and_readiness(self, serve):
        client = _client(serve())
        assert client.get("/healthz")["status"] == "alive"
        ready = client.get("/readyz")
        assert ready["ready"] is True
        assert "free_disk_mb" in ready

    def test_duplicate_request_simulates_zero_cells(self, serve):
        client = _client(serve())
        first = client.call("run", dict(SMALL))
        assert first["state"] == "done" and first["simulated"] == 1
        second = client.call("run", dict(SMALL))
        assert second["simulated"] == 0
        assert second["reused_journal"] == 1
        assert second["results"] == first["results"]

    def test_cache_preseeds_overlapping_request(self, serve):
        client = _client(serve())
        client.call("run", dict(SMALL, design="vipt"))
        sweep = client.call("sweep", {
            "workloads": ["gups"], "designs": ["vipt", "seesaw"],
            "length": SMALL["length"]})
        # the vipt cell came from the cache; only seesaw simulated
        assert sweep["reused_cache"] == 1
        assert sweep["simulated"] == 1
        assert sweep["improvements"][0]["baseline"] == "vipt"

    def test_cache_survives_server_restart(self, serve):
        client = _client(serve())
        client.call("run", dict(SMALL, seed=7))
        fresh = _client(serve())  # same spool, new server + empty memory
        # different request digest (other designs) but one shared cell
        out = fresh.call("sweep", {
            "workloads": ["gups"], "designs": ["seesaw", "vivt"],
            "length": SMALL["length"], "seed": 7})
        assert out["reused_cache"] == 1

    def test_overload_is_structured_429(self, serve):
        # Ample quota: this test must hit the *pool* bound, not the
        # per-client bucket.
        server = serve(jobs=1, max_pending=1,
                       quota_capacity=1000, quota_refill_per_s=1000)
        client = _client(server)
        with ThreadPoolExecutor(2) as pool:
            blocker = pool.submit(
                client.call, "sweep",
                {"workloads": ["gups", "mcf"],
                 "designs": ["vipt", "seesaw"], "length": 20_000})
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not server.pool.active():
                time.sleep(0.02)  # wait for the blocker to be admitted
            reply = client.request("run", dict(SMALL))
            assert reply["error"]["code"] == -32001
            assert reply["error"]["data"]["max_pending"] == 1
            assert "retry_after_s" in reply["error"]["data"]
            blocker.result(timeout=120)

    def test_quota_exhaustion_is_structured_429(self, serve):
        server = serve(quota_capacity=2, quota_refill_per_s=0.01)
        client = _client(server, name="greedy")
        client.call("status", {})  # status is free; only run/sweep charge
        replies = [client.request("run", dict(SMALL)) for _ in range(3)]
        errors = [r["error"]["code"] for r in replies if "error" in r]
        assert errors == [-32002]
        assert "retry_after_s" in replies[-1]["error"]["data"]

    def test_pool_rejection_refunds_quota(self, serve):
        # Two tokens total: the blocker takes one; the pool-rejected
        # request must give its token back, funding the post-backoff
        # retry — without the refund the retry would die -32002.
        server = serve(jobs=1, max_pending=1, quota_capacity=2,
                       quota_refill_per_s=0.001)
        client = _client(server, name="patient")
        with ThreadPoolExecutor(1) as pool:
            blocker = pool.submit(
                client.call, "sweep",
                {"workloads": ["gups", "mcf"],
                 "designs": ["vipt", "seesaw"], "length": 20_000})
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not server.pool.active():
                time.sleep(0.02)
            reply = client.request("run", dict(SMALL, seed=31))
            assert reply["error"]["code"] == -32001  # pool, not quota
            assert server.quota.snapshot()["refunded"] == 1
            blocker.result(timeout=120)
        out = client.call("run", dict(SMALL, seed=31))
        assert out["state"] == "done"

    def test_request_jobs_clamped_to_server_slots(self, serve):
        server = serve(jobs=2)
        client = _client(server)
        out = client.call("run", dict(SMALL, seed=11, jobs=64))
        assert out["state"] == "done"
        job = server.pool.find(out["job_id"])
        # the executed parallelism matches the reserved slots
        assert job.params["jobs"] == 2
        assert job.slots == 2

    def test_concurrent_duplicate_attaches_to_live_job(self, serve):
        server = serve()
        client = _client(server)
        params = {"workloads": ["gups", "mcf"],
                  "designs": ["vipt", "seesaw"],
                  "length": 20_000, "seed": 21}
        accepted = client.call("sweep", dict(params, wait=False))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not server.pool.active():
            time.sleep(0.02)
        # a no-wait duplicate is pointed at the live job, not admitted
        attached = client.call("sweep", dict(params, wait=False))
        assert attached["state"] == "attached"
        assert attached["job_id"] == accepted["job_id"]
        # a waiting duplicate rides the same job to completion: one
        # journal writer, one simulation of each cell
        dup = client.call("sweep", dict(params))
        assert dup["job_id"] == accepted["job_id"]
        assert dup["state"] == "done"
        assert dup["simulated"] == 4
        assert server.deduped == 2
        assert server.pool.snapshot()["admitted"] == 1

    def test_queued_deadline_degrades_without_simulating(self, serve):
        server = serve(jobs=1)
        client = _client(server)
        with ThreadPoolExecutor(1) as pool:
            blocker = pool.submit(
                client.call, "sweep",
                {"workloads": ["gups", "mcf"],
                 "designs": ["vipt", "seesaw"], "length": 20_000})
            time.sleep(0.5)
            out = client.call("run", dict(SMALL, seed=9,
                                          deadline_s=0.2))
            assert out["state"] == "failed"
            assert out["simulated"] == 0
            assert out["failures"][0]["error_class"] == "DeadlineExceeded"
            blocker.result(timeout=120)

    def test_draining_server_rejects_new_work(self, serve):
        server = serve()
        client = _client(server)
        server.draining = True  # the flag _submit checks at admission
        try:
            reply = client.request("run", dict(SMALL))
        finally:
            server.draining = False
        assert reply["error"]["code"] == -32003
        assert "resume" in reply["error"]["message"]

    def test_unknown_token_is_structured_not_found(self, serve):
        client = _client(serve())
        reply = client.request("status", {"resume_token": "beefcafe"})
        assert reply["error"]["code"] == -32004

    def test_async_submit_and_poll(self, serve):
        client = _client(serve())
        accepted = client.call("run", dict(SMALL, seed=5, wait=False))
        assert accepted["state"] == "accepted"
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = client.call("status",
                                 {"job_id": accepted["job_id"]})
            if status["state"] not in ("queued", "running"):
                break
            time.sleep(0.1)
        assert status["state"] == "done"
        assert status["result"]["simulated"] == 1

    def test_batch_requests_answered_elementwise(self, serve):
        client = _client(serve())
        batch = [
            {"jsonrpc": "2.0", "id": 1, "method": "status", "params": {}},
            {"jsonrpc": "2.0", "id": 2, "method": "explode", "params": {}},
        ]
        replies = client._post("/rpc", json.dumps(batch).encode())
        assert replies[0]["id"] == 1 and "result" in replies[0]
        assert replies[1]["error"]["code"] == METHOD_NOT_FOUND

    def test_drain_interrupts_flushes_and_resumes(self, serve, tmp_path):
        from repro.resilience.runner import SweepJournal

        server = serve()
        client = _client(server)
        params = {"workloads": ["gups", "mcf", "redis"],
                  "designs": ["vipt", "pipt", "vivt", "seesaw"],
                  "length": 60_000, "jobs": 2}
        with ThreadPoolExecutor(1) as pool:
            future = pool.submit(client.call, "sweep", params)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not server.pool.active():
                time.sleep(0.05)
            time.sleep(1.0)  # let at least one cell get in flight
            server.begin_drain_threadsafe(143, signal.SIGTERM)
            out = future.result(timeout=120)
        assert out["state"] == "interrupted"
        assert out["signum"] == signal.SIGTERM
        assert out["exit_code"] == 143
        token = out["resume_token"]
        # the journal on disk is canonical and checksum-valid
        journal = SweepJournal(tmp_path / "spool" / f"{token}.jsonl")
        header, done = journal.read()
        assert header["workloads"] == params["workloads"]
        assert journal.rewrite_canonical() is False  # already canonical
        # a fresh server over the same spool finishes from the token
        fresh = _client(serve())
        resumed = fresh.call("sweep", {"resume_token": token})
        assert resumed["state"] == "done"
        assert resumed["cells"] == 12
        assert resumed["reused_journal"] == len(done)
        assert resumed["simulated"] == 12 - len(done)

    def test_shutdown_rpc_drains_with_exit_zero(self, tmp_path):
        from repro.serve.server import ServeConfig, serve_in_thread

        with serve_in_thread(ServeConfig(
                port=0, jobs=1, spool=tmp_path / "spool")) as server:
            client = _client(server)
            ack = client.call("shutdown", {})
            assert ack["state"] == "draining"
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not server.draining:
                time.sleep(0.05)
            assert server.draining
        assert server.exit_code == 0

    def test_bench_serve_round_trip(self):
        from repro.perf.bench import bench_serve

        figures = bench_serve(trace_length=1500, round_trips=3)
        assert figures["priming_simulated"] == 1
        assert figures["round_trips"] == 3
        assert figures["round_trips_per_sec"] > 0
        assert figures["p50_s"] <= figures["p95_s"]


class TestSampledProtocol:
    """Protocol + digest behaviour of the sampled lane at the service
    boundary: validation of the tuning keys, and the guarantee that a
    sampled request can never alias an exact one in the cache."""

    def test_sampled_run_fills_plan_defaults(self):
        out = validate_params("run", {"workload": "gups", "sampled": True})
        from repro.sampling import SamplingPlan
        plan = SamplingPlan()
        assert out["sampled"] is True
        assert out["interval_size"] == plan.interval_size
        assert out["max_clusters"] == plan.max_clusters
        assert out["warmup"] == plan.warmup

    def test_exact_request_omits_sampling_keys(self):
        out = validate_params("run", {"workload": "gups"})
        assert "sampled" not in out
        assert "interval_size" not in out

    def test_tuning_keys_require_sampled(self):
        with pytest.raises(ProtocolError) as info:
            validate_params("run", {"workload": "gups",
                                    "interval_size": 500})
        assert info.value.code == INVALID_PARAMS
        assert "sampled" in str(info.value)

    def test_sampled_digest_differs_from_exact(self):
        from repro.serve.jobs import request_digest
        exact = validate_params("run", {"workload": "gups"})
        sampled = validate_params("run", {"workload": "gups",
                                          "sampled": True})
        assert request_digest(exact) != request_digest(sampled)

    def test_exact_digests_unchanged_by_sampling_support(self):
        """Adding the sampled keys to the schema must not shift the
        digest of a plain exact request (cache/journal compatibility)."""
        out = validate_params("run", {"workload": "gups"})
        assert all(k not in out
                   for k in ("sampled", "interval_size", "max_clusters",
                             "warmup"))

    def test_sampling_plan_reconstructed_from_params(self):
        from repro.sampling import SamplingPlan
        from repro.serve.jobs import sampling_plan_from_params
        assert sampling_plan_from_params({"workload": "gups"}) is None
        params = validate_params("run", {"workload": "gups",
                                         "sampled": True,
                                         "interval_size": 450,
                                         "max_clusters": 6})
        plan = sampling_plan_from_params(params)
        assert plan == SamplingPlan(interval_size=450, max_clusters=6,
                                    warmup=SamplingPlan().warmup)
