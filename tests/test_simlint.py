"""Tests for simlint: each rule fires on an injected violation, suppression
comments work, the JSON report is machine-readable, and — the gate CI
enforces — the repository's own ``src/`` tree is clean."""

import json
from pathlib import Path

import pytest

from repro.devtools.simlint.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    lint,
    main,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return str(path)


def rules_of(findings):
    return sorted(finding.rule for finding in findings)


class TestCounterDrift:
    def test_unwritten_stats_field_flagged(self, tmp_path):
        path = write(tmp_path, "stats.py", """\
from dataclasses import dataclass


@dataclass
class FooStats:
    hits: int = 0
    misses: int = 0


def bump(stats):
    stats.hits += 1
""")
        findings = lint([path], select=["SL001"])
        assert rules_of(findings) == ["SL001"]
        assert "FooStats.misses" in findings[0].message

    def test_written_via_keyword_is_clean(self, tmp_path):
        path = write(tmp_path, "stats.py", """\
from dataclasses import dataclass


@dataclass
class BarResult:
    cycles: int = 0


def make():
    return BarResult(cycles=5)
""")
        assert lint([path], select=["SL001"]) == []


class TestDeterminism:
    def test_global_random_call_flagged(self, tmp_path):
        path = write(tmp_path, "rng.py", """\
import random


def roll():
    return random.randint(0, 6)
""")
        findings = lint([path], select=["SL002"])
        assert rules_of(findings) == ["SL002"]
        assert "random.randint" in findings[0].message

    def test_unseeded_default_rng_flagged(self, tmp_path):
        path = write(tmp_path, "rng.py", """\
import numpy as np


def make():
    return np.random.default_rng()
""")
        findings = lint([path], select=["SL002"])
        assert rules_of(findings) == ["SL002"]
        assert "unseeded" in findings[0].message

    def test_seeded_rng_is_clean(self, tmp_path):
        path = write(tmp_path, "rng.py", """\
import numpy as np


def make(seed):
    return np.random.default_rng(seed)
""")
        assert lint([path], select=["SL002"]) == []

    def test_set_iteration_flagged(self, tmp_path):
        path = write(tmp_path, "iterate.py", """\
def visit(graph):
    pending = {3, 1, 2}
    for node in pending:
        graph.touch(node)
""")
        findings = lint([path], select=["SL002"])
        assert rules_of(findings) == ["SL002"]
        assert "hash-dependent" in findings[0].message

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        path = write(tmp_path, "iterate.py", """\
def visit(graph):
    pending = {3, 1, 2}
    for node in sorted(pending):
        graph.touch(node)
""")
        assert lint([path], select=["SL002"]) == []


class TestConfigHygiene:
    CONFIG = """\
from dataclasses import dataclass


@dataclass
class SimConfig:
    used_knob: int = 1
    dead_knob: int = 2


def consume(config):
    return config.used_knob


def build():
    return SimConfig(used_knob=3, wrong_knob=4)
"""

    def test_dead_field_and_unknown_keyword_flagged(self, tmp_path):
        path = write(tmp_path, "sim/config.py", self.CONFIG)
        findings = lint([path], select=["SL003"])
        assert rules_of(findings) == ["SL003", "SL003"]
        messages = " ".join(finding.message for finding in findings)
        assert "SimConfig.dead_knob" in messages
        assert "wrong_knob" in messages

    def test_rule_scoped_to_sim_config_module(self, tmp_path):
        # The identical code outside sim/config.py is not a config module.
        path = write(tmp_path, "other.py", self.CONFIG)
        assert lint([path], select=["SL003"]) == []


class TestUnitMixing:
    def test_cycles_plus_ns_flagged(self, tmp_path):
        path = write(tmp_path, "units.py", """\
def total(lat_cycles, dram_ns):
    return lat_cycles + dram_ns
""")
        findings = lint([path], select=["SL004"])
        assert rules_of(findings) == ["SL004"]
        assert "lat_cycles" in findings[0].message

    def test_converted_quantities_are_clean(self, tmp_path):
        path = write(tmp_path, "units.py", """\
def total(lat_cycles, dram_ns, period_ns):
    return lat_cycles * period_ns + dram_ns
""")
        assert lint([path], select=["SL004"]) == []


class TestSilentException:
    def test_bare_except_and_silent_broad_handler_flagged(self, tmp_path):
        path = write(tmp_path, "handlers.py", """\
def first(step):
    try:
        step()
    except:
        pass


def second(step):
    try:
        step()
    except Exception:
        pass
""")
        findings = lint([path], select=["SL005"])
        assert rules_of(findings) == ["SL005", "SL005"]

    def test_narrow_or_handled_exceptions_are_clean(self, tmp_path):
        path = write(tmp_path, "handlers.py", """\
def first(step, log):
    try:
        step()
    except ValueError:
        pass


def second(step, log):
    try:
        step()
    except Exception as exc:
        log.warning("step failed: %s", exc)
        raise
""")
        assert lint([path], select=["SL005"]) == []


class TestSuppression:
    def test_same_line_suppression(self, tmp_path):
        path = write(tmp_path, "sup.py", """\
def visit(graph):
    pending = {3, 1, 2}
    for node in pending:  # simlint: disable=SL002
        graph.touch(node)
""")
        assert lint([path]) == []

    def test_line_above_suppression(self, tmp_path):
        path = write(tmp_path, "sup.py", """\
def visit(graph):
    pending = {3, 1, 2}
    # simlint: disable=SL002
    for node in pending:
        graph.touch(node)
""")
        assert lint([path]) == []

    def test_unrelated_rule_suppression_does_not_hide(self, tmp_path):
        path = write(tmp_path, "sup.py", """\
def visit(graph):
    pending = {3, 1, 2}
    for node in pending:  # simlint: disable=SL005
        graph.touch(node)
""")
        assert rules_of(lint([path])) == ["SL002"]


class TestCli:
    VIOLATION = """\
def total(lat_cycles, dram_ns):
    return lat_cycles + dram_ns
"""

    def test_exit_codes(self, tmp_path, capsys):
        clean = write(tmp_path, "clean.py", "x = 1\n")
        dirty = write(tmp_path, "dirty.py", self.VIOLATION)
        assert main([clean]) == EXIT_CLEAN
        assert main([dirty]) == EXIT_FINDINGS
        assert main([str(tmp_path / "missing.py")]) == EXIT_ERROR
        assert main(["--select", "SL999", clean]) == EXIT_ERROR
        capsys.readouterr()

    def test_json_report(self, tmp_path, capsys):
        dirty = write(tmp_path, "dirty.py", self.VIOLATION)
        assert main(["--json", dirty]) == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert report["tool"] == "simlint"
        assert report["count"] == 1
        finding = report["findings"][0]
        assert finding["rule"] == "SL004"
        assert finding["line"] == 2
        assert finding["path"].endswith("dirty.py")

    def test_select_filters_rules(self, tmp_path):
        path = write(tmp_path, "multi.py", """\
def total(lat_cycles, dram_ns):
    try:
        return lat_cycles + dram_ns
    except:
        pass
""")
        assert rules_of(lint([path])) == ["SL004", "SL005"]
        assert rules_of(lint([path], select=["SL005"])) == ["SL005"]


class TestRepositoryIsClean:
    def test_src_tree_has_no_findings(self):
        findings = lint([str(REPO_SRC)])
        assert findings == [], "\n".join(f.render() for f in findings)
