"""Tests for the SRAM latency/energy model (paper §III-B, Fig. 2b/2c)."""

import math

import pytest

from repro.energy.sram import SRAMModel, TABLE3, table3_latencies

KB = 1024
MODEL = SRAMModel()


class TestTable3:
    def test_all_nine_published_points_present(self):
        assert len(TABLE3) == 9

    def test_values_match_the_paper(self):
        # Spot checks straight from Table III.
        assert table3_latencies(32, 1.33) == (1, 2, 1)
        assert table3_latencies(64, 2.80) == (1, 9, 2)
        assert table3_latencies(128, 4.00) == (1, 42, 4)

    def test_unknown_configuration_raises(self):
        with pytest.raises(KeyError):
            table3_latencies(256, 1.33)

    def test_superpage_always_at_most_base(self):
        for tft, base, super_ in TABLE3.values():
            assert super_ <= base
            assert tft == 1


class TestLatencyTrends:
    def test_latency_grows_10_to_25_percent_per_step_up_to_8_ways(self):
        """Paper Fig. 2b: each associativity doubling costs 10-25%."""
        for size in (16 * KB, 32 * KB, 64 * KB):
            for ways in (1, 2, 4):
                ratio = (MODEL.access_latency_ns(size, ways * 2)
                         / MODEL.access_latency_ns(size, ways))
                assert 1.10 <= ratio <= 1.25

    def test_wide_configs_blow_up(self):
        """The infeasible corner of Fig. 2b: 32-way latencies explode."""
        ratio = (MODEL.access_latency_ns(128 * KB, 32)
                 / MODEL.access_latency_ns(128 * KB, 8))
        assert ratio > 2.0

    def test_latency_grows_with_size(self):
        assert (MODEL.access_latency_ns(128 * KB, 8)
                > MODEL.access_latency_ns(16 * KB, 8))

    def test_cycles_conversion_ceils(self):
        ns = MODEL.access_latency_ns(32 * KB, 8)
        cycles = MODEL.access_latency_cycles(32 * KB, 8, 1.33)
        assert cycles == math.ceil(ns * 1.33)
        assert cycles >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MODEL.access_latency_ns(0, 8)
        with pytest.raises(ValueError):
            MODEL.access_energy_nj(32 * KB, 0)


class TestEnergyTrends:
    def test_energy_grows_40_to_50_percent_per_step(self):
        """Paper Fig. 2c: 40-50% per associativity doubling."""
        for size in (16 * KB, 32 * KB, 128 * KB):
            for ways in (1, 2, 4, 8, 16):
                ratio = (MODEL.access_energy_nj(size, ways * 2)
                         / MODEL.access_energy_nj(size, ways))
                assert 1.40 <= ratio <= 1.50

    def test_absolute_range_matches_fig2c(self):
        # Fig. 2c spans roughly 0.01 nJ (16KB DM) to ~0.2 nJ (128KB 32w).
        assert 0.005 <= MODEL.access_energy_nj(16 * KB, 1) <= 0.02
        assert 0.1 <= MODEL.access_energy_nj(128 * KB, 32) <= 0.3


class TestPartialLookup:
    def test_full_probe_equals_access_energy(self):
        assert (MODEL.partial_lookup_energy_nj(32 * KB, 8, 8)
                == MODEL.access_energy_nj(32 * KB, 8))

    def test_4_of_8_way_saving_near_paper_39_percent(self):
        """Paper §IV-A4: a SEESAW 4-way access costs 39.43% less than the
        baseline 8-way access (including the 0.41% partition overhead)."""
        full = MODEL.access_energy_nj(32 * KB, 8)
        partial = MODEL.partial_lookup_energy_nj(32 * KB, 8, 4)
        saving = 1 - partial / full
        assert 0.35 <= saving <= 0.45

    def test_partition_overhead_applied(self):
        """SEESAW's extra muxing costs ~0.41% on narrow probes."""
        base = MODEL.access_energy_nj(32 * KB, 8)
        narrow = MODEL.partial_lookup_energy_nj(32 * KB, 8, 4)
        ideal = base * (4 / 8) ** MODEL.partial_exponent
        assert narrow / ideal == pytest.approx(1.0041)

    def test_rejects_bad_probe_width(self):
        with pytest.raises(ValueError):
            MODEL.partial_lookup_energy_nj(32 * KB, 8, 0)
        with pytest.raises(ValueError):
            MODEL.partial_lookup_energy_nj(32 * KB, 8, 9)

    def test_monotone_in_ways_probed(self):
        energies = [MODEL.partial_lookup_energy_nj(32 * KB, 8, w)
                    for w in range(1, 9)]
        assert energies == sorted(energies)
