"""Tests for the simulation result container and its serialization."""

import json

import pytest

from repro.energy.accounting import EnergyBreakdown
from repro.sim.config import SystemConfig
from repro.sim.stats import SimulationResult
from repro.sim.system import simulate
from repro.workloads.suite import build_trace, get_workload


def make_result(**overrides):
    defaults = dict(
        config_description="test", workload="w",
        runtime_cycles=1000, instructions=3000,
        energy=EnergyBreakdown(l1_cpu_lookup_nj=10.0, leakage_nj=5.0),
        l1_hits=800, l1_misses=200, l1_ways_probed=8000,
        superpage_reference_fraction=0.8,
        footprint_superpage_fraction=0.75,
        memory_references=1000,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(3.0)

    def test_hit_rate(self):
        assert make_result().l1_hit_rate == pytest.approx(0.8)

    def test_mpki(self):
        assert make_result().l1_mpki == pytest.approx(200 / 3.0)

    def test_total_energy(self):
        assert make_result().total_energy_nj == pytest.approx(15.0)

    def test_zero_division_guards(self):
        result = make_result(runtime_cycles=0, instructions=0,
                             l1_hits=0, l1_misses=0)
        assert result.ipc == 0.0
        assert result.l1_hit_rate == 0.0
        assert result.l1_mpki == 0.0


class TestSerialization:
    def test_to_dict_round_trips_through_json(self):
        result = make_result()
        payload = json.loads(result.to_json())
        assert payload["runtime_cycles"] == 1000
        assert payload["energy_nj"]["l1_cpu_lookup"] == pytest.approx(10.0)
        assert payload["energy_total_nj"] == pytest.approx(15.0)

    def test_real_simulation_result_serializes(self):
        trace = build_trace(get_workload("astar"), length=3000, seed=9)
        result = simulate(SystemConfig(), trace)
        payload = json.loads(result.to_json())
        assert payload["workload"] == "astar"
        assert payload["l1_hit_rate"] > 0
        assert set(payload["energy_nj"]) >= {"l1_cpu_lookup", "llc",
                                             "leakage"}
