"""Tests for the workload suite."""

import numpy as np
import pytest

from repro.mem.address import PAGE_SIZE_2MB
from repro.workloads.suite import (
    CLOUD_WORKLOADS,
    HEAP_BASE,
    WORKLOADS,
    build_trace,
    get_workload,
    workload_names,
)


class TestCatalog:
    def test_sixteen_workloads(self):
        # The paper's Figs. 3 and 7 evaluate exactly these sixteen.
        assert len(WORKLOADS) == 16
        expected = {"astar", "cactus", "cann", "gems", "g500", "gups", "mcf",
                    "mumm", "omnet", "tigr", "tunk", "xalanc", "nutch",
                    "olio", "redis", "mongo"}
        assert set(WORKLOADS) == expected

    def test_cloud_subset(self):
        assert set(CLOUD_WORKLOADS) <= set(WORKLOADS)
        assert len(CLOUD_WORKLOADS) == 8

    def test_get_workload(self):
        assert get_workload("redis").name == "redis"
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_workload_names_order(self):
        assert workload_names()[0] == "astar"

    def test_multithreaded_flags(self):
        multithreaded = {name for name, spec in WORKLOADS.items()
                         if spec.is_multithreaded}
        assert multithreaded == {"cann", "g500", "tunk", "nutch", "olio",
                                 "mongo"}

    def test_mixes_normalizable(self):
        for spec in WORKLOADS.values():
            assert sum(spec.mix) > 0
            assert all(w >= 0 for w in spec.mix)


class TestBuildTrace:
    def test_trace_length_and_name(self):
        trace = build_trace(get_workload("redis"), length=5000, seed=1)
        assert len(trace) == 5000
        assert trace.name == "redis"

    def test_deterministic(self):
        a = build_trace(get_workload("astar"), length=2000, seed=5)
        b = build_trace(get_workload("astar"), length=2000, seed=5)
        assert a.addresses == b.addresses
        assert a.writes == b.writes

    def test_write_fraction_near_spec(self):
        spec = get_workload("gups")
        trace = build_trace(spec, length=20000, seed=2)
        assert trace.write_fraction == pytest.approx(spec.write_fraction,
                                                     abs=0.05)

    def test_multithreaded_interleaves_cores(self):
        spec = get_workload("cann")
        trace = build_trace(spec, length=4000, seed=3)
        assert trace.num_cores == 4
        assert trace.cores[:4] == [0, 1, 2, 3]

    def test_addresses_above_heap_base(self):
        trace = build_trace(get_workload("mcf"), length=2000, seed=1)
        assert min(trace.addresses) >= HEAP_BASE

    def test_heap_spans_many_2mb_regions(self):
        trace = build_trace(get_workload("gups"), length=20000, seed=1)
        regions = {a // PAGE_SIZE_2MB for a in trace.addresses}
        assert len(regions) >= 8

    def test_region_utilization_bounds_offsets(self):
        spec = get_workload("redis")
        trace = build_trace(spec, length=5000, seed=1)
        used = int(PAGE_SIZE_2MB * spec.region_utilization)
        for address in trace.addresses[:500]:
            assert address % PAGE_SIZE_2MB < used

    def test_line_reuse_raises_hit_potential(self):
        """Line reuse must be dense but *near* rather than strictly
        adjacent (the scatter keeps the MRU way predictor honest): most
        references recur within a short window."""
        spec = get_workload("redis")   # line_reuse = 4.0
        trace = build_trace(spec, length=20000, seed=7)
        lines = np.array(trace.addresses) >> 6
        adjacent = (np.diff(lines) == 0).mean()
        assert adjacent > 0.2          # plenty of back-to-back word access
        # ... and within a 12-reference window, most lines recur.
        recur = 0
        for i in range(0, 5000):
            if lines[i] in lines[i + 1:i + 12]:
                recur += 1
        assert recur / 5000 > 0.5

    def test_chase_workloads_have_low_reuse(self):
        trace = build_trace(get_workload("cann"), length=20000, seed=7)
        per_core = trace.slice_for_core(0)
        lines = np.array(per_core.addresses) >> 6
        repeats = (np.diff(lines) == 0).mean()
        assert repeats < 0.6

    def test_shared_region_actually_shared(self):
        trace = build_trace(get_workload("g500"), length=20000, seed=1)
        by_core = [set(trace.slice_for_core(c).addresses) for c in range(4)]
        shared_01 = by_core[0] & by_core[1]
        assert shared_01, "threads must overlap on the shared region"

    def test_single_thread_has_no_sharing_partner(self):
        trace = build_trace(get_workload("astar"), length=5000, seed=1)
        assert trace.num_cores == 1
