"""Integration tests for the full-system simulator."""

import pytest

from repro.core.seesaw import SeesawL1Cache
from repro.sim.config import SystemConfig
from repro.sim.system import SystemSimulator, simulate
from repro.workloads.suite import build_trace, get_workload
from repro.workloads.trace import MemoryTrace

TRACE = build_trace(get_workload("redis"), length=6000, seed=11)
MT_TRACE = build_trace(get_workload("nutch"), length=6000, seed=11)


def run(config, trace=TRACE):
    return SystemSimulator(config, trace).run()


class TestBasicRuns:
    def test_seesaw_run_produces_sane_result(self):
        result = run(SystemConfig(l1_design="seesaw"))
        assert result.runtime_cycles > 0
        assert 0 < result.ipc < 4
        assert 0 < result.l1_hit_rate < 1
        assert result.total_energy_nj > 0
        assert 0 <= result.superpage_reference_fraction <= 1

    def test_vipt_and_pipt_also_run(self):
        for design in ("vipt", "pipt"):
            result = run(SystemConfig(l1_design=design))
            assert result.runtime_cycles > 0
            assert result.tft_hit_rate == 0.0   # no TFT in baselines

    def test_simulate_helper(self):
        result = simulate(SystemConfig(), TRACE)
        assert result.workload == "redis"

    def test_deterministic(self):
        a = run(SystemConfig(seed=3))
        b = run(SystemConfig(seed=3))
        assert a.runtime_cycles == b.runtime_cycles
        assert a.total_energy_nj == pytest.approx(b.total_energy_nj)

    def test_multithreaded_uses_one_core_per_thread(self):
        sim = SystemSimulator(SystemConfig(), MT_TRACE)
        assert sim.num_cores == 2
        result = sim.run()
        assert result.coherence_probes > 0


class TestDesignDifferences:
    def test_seesaw_probes_fewer_ways_than_vipt(self):
        seesaw = run(SystemConfig(l1_design="seesaw"))
        vipt = run(SystemConfig(l1_design="vipt"))
        assert seesaw.l1_ways_probed < vipt.l1_ways_probed

    def test_seesaw_not_slower_than_vipt(self):
        seesaw = run(SystemConfig(l1_design="seesaw"))
        vipt = run(SystemConfig(l1_design="vipt"))
        assert seesaw.runtime_cycles <= vipt.runtime_cycles * 1.01

    def test_seesaw_saves_energy(self):
        seesaw = run(SystemConfig(l1_design="seesaw"))
        vipt = run(SystemConfig(l1_design="vipt"))
        assert seesaw.total_energy_nj < vipt.total_energy_nj

    def test_inorder_gains_exceed_ooo(self):
        gains = {}
        for core in ("ooo", "inorder"):
            seesaw = run(SystemConfig(l1_design="seesaw", core=core,
                                      l1_size_kb=64))
            vipt = run(SystemConfig(l1_design="vipt", core=core,
                                    l1_size_kb=64))
            gains[core] = 1 - seesaw.runtime_cycles / vipt.runtime_cycles
        assert gains["inorder"] >= gains["ooo"]


class TestFragmentationEffects:
    def test_memhog_reduces_superpage_coverage(self):
        light = run(SystemConfig(memhog_fraction=0.0))
        heavy = run(SystemConfig(memhog_fraction=0.6))
        assert (heavy.footprint_superpage_fraction
                < light.footprint_superpage_fraction)

    def test_thp_never_gives_zero_superpages(self):
        from repro.mem.os_policy import THPPolicy
        result = run(SystemConfig(thp_policy=THPPolicy.NEVER))
        assert result.superpage_reference_fraction == 0.0
        assert result.tft_hit_rate == 0.0


class TestWarmupAndReset:
    def test_warmup_zero_counts_everything(self):
        sim = SystemSimulator(SystemConfig(), TRACE)
        result = sim.run(warmup_fraction=0.0)
        assert result.memory_references == len(TRACE)

    def test_warmup_shrinks_measured_window(self):
        sim = SystemSimulator(SystemConfig(), TRACE)
        result = sim.run(warmup_fraction=0.5)
        assert result.memory_references == len(TRACE) // 2

    def test_reset_measurements_preserves_cache_state(self):
        sim = SystemSimulator(SystemConfig(), TRACE)
        sim.run(warmup_fraction=0.0)
        lines_before = sim.l1s[0].store.valid_lines()
        sim.reset_measurements()
        assert sim.l1s[0].store.valid_lines() == lines_before
        assert sim.l1s[0].stats.accesses == 0


class TestHooksWiring:
    def test_seesaw_tft_populated_via_tlb_fills(self):
        sim = SystemSimulator(SystemConfig(l1_design="seesaw"), TRACE)
        sim.run(warmup_fraction=0.0)   # warmup would reset the fill stats
        assert sim.l1s[0].tft.stats.fills > 0

    def test_context_switch_interval_flushes_tft(self):
        config = SystemConfig(l1_design="seesaw",
                              context_switch_interval=500)
        sim = SystemSimulator(config, TRACE)
        sim.run(warmup_fraction=0.0)
        assert sim.l1s[0].tft.stats.flushes > 0

    def test_snoopy_coherence_option(self):
        result = run(SystemConfig(coherence="snoop"), MT_TRACE)
        assert result.runtime_cycles > 0

    def test_no_coherence_option(self):
        result = run(SystemConfig(coherence="none",
                                  system_probe_interval=0))
        assert result.coherence_probes == 0


class TestWayPredictionDesigns:
    def test_wp_only_design_runs(self):
        result = run(SystemConfig(l1_design="vipt", way_prediction=True))
        assert result.way_prediction_accuracy is not None

    def test_wp_plus_seesaw(self):
        result = run(SystemConfig(l1_design="seesaw", way_prediction=True))
        assert result.way_prediction_accuracy is not None

    def test_wp_saves_energy_over_plain_vipt(self):
        plain = run(SystemConfig(l1_design="vipt"))
        wp = run(SystemConfig(l1_design="vipt", way_prediction=True))
        assert wp.total_energy_nj < plain.total_energy_nj
