"""Tests for the Translation Filter Table."""

import pytest

from repro.core.tft import TranslationFilterTable
from repro.mem.address import PAGE_SIZE_2MB


def region_va(region: int, offset: int = 0) -> int:
    return region * PAGE_SIZE_2MB + offset


class TestStructure:
    def test_paper_sizing_16_entries_86_bytes(self):
        tft = TranslationFilterTable(entries=16)
        assert tft.TAG_BITS == 43
        assert tft.storage_bytes == 86.0   # paper §IV-A2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TranslationFilterTable(entries=0)


class TestLookupFill:
    def test_miss_before_fill_hit_after(self):
        tft = TranslationFilterTable(16)
        va = region_va(5, 0x1234)
        assert not tft.lookup(va)
        tft.fill(va)
        assert tft.lookup(region_va(5, 0x9999))
        assert tft.stats.hits == 1 and tft.stats.misses == 1

    def test_never_false_positive_across_regions(self):
        tft = TranslationFilterTable(16)
        tft.fill(region_va(5))
        # Region 21 hashes to the same slot (21 mod 16 = 5) but must miss.
        assert not tft.lookup(region_va(21))

    def test_direct_mapped_conflict_eviction(self):
        tft = TranslationFilterTable(16)
        tft.fill(region_va(5))
        tft.fill(region_va(21))      # same slot: evicts region 5
        assert not tft.probe(region_va(5))
        assert tft.probe(region_va(21))

    def test_16_consecutive_regions_coexist(self):
        """Contiguous heaps do not self-conflict under the mod hash."""
        tft = TranslationFilterTable(16)
        for region in range(100, 116):
            tft.fill(region_va(region))
        assert all(tft.probe(region_va(r)) for r in range(100, 116))

    def test_probe_has_no_stats_side_effect(self):
        tft = TranslationFilterTable(16)
        tft.probe(region_va(1))
        assert tft.stats.lookups == 0


class TestInvalidation:
    def test_invalidate_on_splinter(self):
        tft = TranslationFilterTable(16)
        tft.fill(region_va(7))
        assert tft.invalidate(region_va(7, 123))
        assert not tft.probe(region_va(7))

    def test_invalidate_wrong_region_is_noop(self):
        tft = TranslationFilterTable(16)
        tft.fill(region_va(7))
        assert not tft.invalidate(region_va(8))
        assert tft.probe(region_va(7))

    def test_flush_on_context_switch(self):
        tft = TranslationFilterTable(16)
        for region in range(4):
            tft.fill(region_va(region))
        tft.flush()
        assert tft.occupancy() == 0
        assert tft.stats.flushes == 1


class TestOccupancy:
    def test_occupancy_counts_valid_slots(self):
        tft = TranslationFilterTable(16)
        tft.fill(region_va(0))
        tft.fill(region_va(1))
        tft.fill(region_va(16))   # conflicts with region 0: still 2 valid
        assert tft.occupancy() == 2

    def test_hit_rate(self):
        tft = TranslationFilterTable(16)
        tft.fill(region_va(3))
        tft.lookup(region_va(3))
        tft.lookup(region_va(4))
        assert tft.stats.hit_rate == pytest.approx(0.5)
