"""Tests for the TLB structure."""

import pytest

from repro.mem.address import PageSize
from repro.tlb.tlb import TLB


def fill_va(tlb, va, pa, size=PageSize.BASE_4KB, asid=0):
    """Helper: fill a TLB from byte addresses."""
    return tlb.fill(va >> size.offset_bits, pa >> size.offset_bits, size,
                    asid)


class TestConstruction:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TLB(entries=0, ways=1, page_sizes=[PageSize.BASE_4KB])
        with pytest.raises(ValueError):
            TLB(entries=10, ways=4, page_sizes=[PageSize.BASE_4KB])
        with pytest.raises(ValueError):
            TLB(entries=16, ways=4, page_sizes=[])

    def test_fully_associative_when_ways_equal_entries(self):
        tlb = TLB(entries=8, ways=8, page_sizes=[PageSize.BASE_4KB])
        assert tlb.num_sets == 1


class TestLookup:
    def test_hit_after_fill(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        fill_va(tlb, 0x1000, 0x9000)
        entry = tlb.lookup(0x1FFF)
        assert entry is not None
        assert entry.physical_base() == 0x9000
        assert tlb.stats.hits == 1

    def test_miss_records_stats(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        assert tlb.lookup(0x1000) is None
        assert tlb.stats.misses == 1

    def test_multi_size_tlb_finds_superpage(self):
        tlb = TLB(16, 16, [PageSize.BASE_4KB, PageSize.SUPER_2MB])
        fill_va(tlb, 0x40000000, 0x200000, PageSize.SUPER_2MB)
        entry = tlb.lookup(0x40000000 + 12345)
        assert entry is not None
        assert entry.page_size is PageSize.SUPER_2MB

    def test_asid_isolation(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        fill_va(tlb, 0x1000, 0x9000, asid=1)
        assert tlb.lookup(0x1000, asid=2) is None
        assert tlb.lookup(0x1000, asid=1) is not None

    def test_probe_has_no_side_effects(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        fill_va(tlb, 0x1000, 0x9000)
        tlb.probe(0x1000)
        tlb.probe(0x555000)
        assert tlb.stats.hits == 0 and tlb.stats.misses == 0

    def test_contains(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        fill_va(tlb, 0x1000, 0x9000)
        assert 0x1000 in tlb
        assert 0x2000 not in tlb

    def test_fill_rejects_unsupported_size(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        with pytest.raises(ValueError):
            tlb.fill(0x200, 0x100, PageSize.SUPER_2MB)


class TestReplacement:
    def test_lru_eviction_within_set(self):
        tlb = TLB(entries=4, ways=4, page_sizes=[PageSize.BASE_4KB])
        for vpn in range(4):
            tlb.fill(vpn, 100 + vpn, PageSize.BASE_4KB)
        # Touch vpn 0 so it is MRU; fill a 5th entry -> vpn 1 evicted.
        tlb.lookup(0)
        victim = tlb.fill(10, 200, PageSize.BASE_4KB)
        assert victim is not None and victim.virtual_page == 1
        assert tlb.probe(0) is not None

    def test_refill_updates_in_place(self):
        tlb = TLB(4, 4, [PageSize.BASE_4KB])
        tlb.fill(1, 10, PageSize.BASE_4KB)
        victim = tlb.fill(1, 20, PageSize.BASE_4KB)
        assert victim is None
        assert tlb.probe(0x1000).physical_page == 20
        assert tlb.valid_entry_count() == 1


class TestInvalidation:
    def test_invalidate_specific_page(self):
        tlb = TLB(16, 4, [PageSize.SUPER_2MB])
        fill_va(tlb, 0x40000000, 0x200000, PageSize.SUPER_2MB)
        assert tlb.invalidate(0x40000000, PageSize.SUPER_2MB)
        assert tlb.probe(0x40000000) is None
        assert not tlb.invalidate(0x40000000, PageSize.SUPER_2MB)

    def test_flush_all(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        for vpn in range(8):
            tlb.fill(vpn, vpn, PageSize.BASE_4KB)
        removed = tlb.flush()
        assert removed == 8
        assert tlb.valid_entry_count() == 0

    def test_flush_single_asid(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        tlb.fill(0, 0, PageSize.BASE_4KB, asid=1)
        tlb.fill(1, 1, PageSize.BASE_4KB, asid=2)
        removed = tlb.flush(asid=1)
        assert removed == 1
        assert tlb.valid_entry_count() == 1


class TestValidCounters:
    def test_valid_entry_count_tracks_fills_and_evictions(self):
        """The O(1) counter drives the scheduler scarcity check (§IV-B3)."""
        tlb = TLB(entries=4, ways=4, page_sizes=[PageSize.SUPER_2MB])
        assert tlb.valid_entry_count(PageSize.SUPER_2MB) == 0
        for vpn in range(6):  # 2 evictions
            tlb.fill(vpn, vpn, PageSize.SUPER_2MB)
        assert tlb.valid_entry_count(PageSize.SUPER_2MB) == 4

    def test_counter_matches_slow_scan(self):
        tlb = TLB(16, 4, [PageSize.BASE_4KB])
        for vpn in range(11):
            tlb.fill(vpn, vpn, PageSize.BASE_4KB)
        tlb.invalidate(3 << 12, PageSize.BASE_4KB)
        scan = sum(1 for s in tlb._sets for e in s if e.valid)
        assert tlb.valid_entry_count() == scan

    def test_occupancy(self):
        tlb = TLB(8, 4, [PageSize.BASE_4KB])
        tlb.fill(0, 0, PageSize.BASE_4KB)
        tlb.fill(1, 1, PageSize.BASE_4KB)
        assert tlb.occupancy() == pytest.approx(0.25)

    def test_hit_rate_stat(self):
        tlb = TLB(8, 4, [PageSize.BASE_4KB])
        tlb.fill(0, 0, PageSize.BASE_4KB)
        tlb.lookup(0)
        tlb.lookup(0x10000)
        assert tlb.stats.hit_rate == pytest.approx(0.5)
