"""Tests for the split/unified TLB hierarchies and page walker."""

import pytest

from repro.mem.address import PAGE_SIZE_2MB, PageSize
from repro.mem.page_table import PageTable, TranslationFault
from repro.tlb.hierarchy import SplitTLBHierarchy, UnifiedTLBHierarchy
from repro.tlb.walker import PageWalker

VA_4KB = 0x1000
VA_2MB = 0x4000_0000


@pytest.fixture
def mapped_table(page_table):
    page_table.map(VA_4KB, 0x9000, PageSize.BASE_4KB)
    page_table.map(VA_2MB, 0x20_0000, PageSize.SUPER_2MB)
    return page_table


class TestPageWalker:
    def test_walk_cost_scales_with_levels(self, mapped_table):
        walker = PageWalker(mapped_table, cycles_per_reference=10)
        assert walker.walk(VA_4KB).latency_cycles == 40
        assert walker.walk(VA_2MB).latency_cycles == 30
        assert walker.stats.walks == 2
        assert walker.stats.base_page_walks == 1
        assert walker.stats.superpage_walks == 1

    def test_walk_unmapped_faults(self, page_table):
        walker = PageWalker(page_table)
        with pytest.raises(TranslationFault):
            walker.walk(0xDEAD000)


class TestSplitHierarchy:
    def make(self, table, l2_entries=0):
        return SplitTLBHierarchy(table, l1_4kb_entries=16, l1_2mb_entries=8,
                                 l2_entries=l2_entries)

    def test_first_translation_walks(self, mapped_table):
        tlbs = self.make(mapped_table)
        result = tlbs.translate(VA_4KB + 5)
        assert result.level == "walk"
        assert result.physical_address == 0x9005
        assert result.page_size is PageSize.BASE_4KB

    def test_second_translation_hits_l1(self, mapped_table):
        tlbs = self.make(mapped_table)
        tlbs.translate(VA_4KB)
        result = tlbs.translate(VA_4KB + 100)
        assert result.level == "l1"
        assert result.latency_cycles == tlbs.l1_latency

    def test_superpage_goes_to_2mb_tlb(self, mapped_table):
        tlbs = self.make(mapped_table)
        tlbs.translate(VA_2MB + 123)
        assert tlbs.l1_2mb.valid_entry_count() == 1
        assert tlbs.l1_4kb.valid_entry_count() == 0
        result = tlbs.translate(VA_2MB + PAGE_SIZE_2MB - 1)
        assert result.level == "l1"
        assert result.is_superpage

    def test_l2_tlb_catches_l1_evictions(self, mapped_table):
        # Map enough base pages to overflow the 16-entry L1.
        for i in range(2, 40):
            mapped_table.map(i << 12, (1000 + i) << 12, PageSize.BASE_4KB)
        tlbs = self.make(mapped_table, l2_entries=512)
        for i in range(2, 40):
            tlbs.translate(i << 12)
        # Page 2 long evicted from L1 but still in the big L2.
        result = tlbs.translate(2 << 12)
        assert result.level == "l2"

    def test_fill_hook_fires_on_l1_fills(self, mapped_table):
        tlbs = self.make(mapped_table)
        fills = []
        tlbs.register_fill_hook(lambda entry: fills.append(entry.page_size))
        tlbs.translate(VA_2MB)
        tlbs.translate(VA_4KB)
        assert fills == [PageSize.SUPER_2MB, PageSize.BASE_4KB]

    def test_invalidate_reaches_all_levels(self, mapped_table):
        tlbs = self.make(mapped_table, l2_entries=64)
        tlbs.translate(VA_2MB)
        tlbs.invalidate(VA_2MB, PageSize.SUPER_2MB)
        assert tlbs.l1_2mb.probe(VA_2MB) is None
        assert tlbs.l2_tlb.probe(VA_2MB) is None

    def test_superpage_counters(self, mapped_table):
        tlbs = self.make(mapped_table)
        assert tlbs.superpage_l1_capacity() == 8
        assert tlbs.superpage_l1_valid_entries() == 0
        tlbs.translate(VA_2MB)
        assert tlbs.superpage_l1_valid_entries() == 1

    def test_translation_latency_accumulates_on_miss_path(self, mapped_table):
        tlbs = SplitTLBHierarchy(mapped_table, l1_4kb_entries=16,
                                 l1_2mb_entries=8, l2_entries=64,
                                 l1_latency=1, l2_latency=7)
        result = tlbs.translate(VA_4KB)
        # L1 miss + L2 miss + walk.
        assert result.latency_cycles > 1 + 7


class TestUnifiedHierarchy:
    def test_unified_l1_holds_both_sizes(self, mapped_table):
        tlbs = UnifiedTLBHierarchy(mapped_table, l1_entries=8, l2_entries=0)
        tlbs.translate(VA_4KB)
        tlbs.translate(VA_2MB)
        assert tlbs.l1.valid_entry_count() == 2
        assert tlbs.translate(VA_4KB).level == "l1"
        assert tlbs.translate(VA_2MB).level == "l1"

    def test_superpage_counters(self, mapped_table):
        tlbs = UnifiedTLBHierarchy(mapped_table, l1_entries=8, l2_entries=0)
        tlbs.translate(VA_2MB)
        assert tlbs.superpage_l1_valid_entries() == 1
        assert tlbs.superpage_l1_capacity() == 8

    def test_invalidate(self, mapped_table):
        tlbs = UnifiedTLBHierarchy(mapped_table, l1_entries=8, l2_entries=64)
        tlbs.translate(VA_2MB)
        tlbs.invalidate(VA_2MB, PageSize.SUPER_2MB)
        assert tlbs.l1.probe(VA_2MB) is None
