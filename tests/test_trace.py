"""Tests for the memory-trace representation."""

import pytest

from repro.workloads.trace import MemoryTrace, TraceRecord


def make_trace():
    return MemoryTrace("t", [0x1000, 0x2000, 0x1040],
                       [False, True, False],
                       cores=[0, 1, 0], gaps=[2, 3, 4])


class TestConstruction:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace("t", [1, 2], [True])
        with pytest.raises(ValueError):
            MemoryTrace("t", [1], [True], cores=[0, 1])

    def test_defaults(self):
        trace = MemoryTrace("t", [1, 2], [False, True])
        assert trace.cores == [0, 0]
        assert trace.gaps == [2, 2]


class TestProperties:
    def test_len_and_iteration(self):
        trace = make_trace()
        assert len(trace) == 3
        records = list(trace)
        assert records[1] == TraceRecord(0x2000, True, 1, 3)

    def test_instructions_counts_gaps_plus_references(self):
        trace = make_trace()
        assert trace.instructions == 3 + 9

    def test_num_cores(self):
        assert make_trace().num_cores == 2

    def test_write_fraction(self):
        assert make_trace().write_fraction == pytest.approx(1 / 3)

    def test_footprint_pages(self):
        assert make_trace().footprint_pages() == 2   # 0x1000/0x1040 share


class TestSliceAndConcat:
    def test_slice_for_core(self):
        sliced = make_trace().slice_for_core(0)
        assert sliced.addresses == [0x1000, 0x1040]
        assert sliced.cores == [0, 0]
        assert sliced.gaps == [2, 4]

    def test_concatenate(self):
        trace = make_trace()
        joined = MemoryTrace.concatenate("j", [trace, trace])
        assert len(joined) == 6
        assert joined.addresses[3] == 0x1000
