"""Tests for the baseline VIPT and PIPT L1 frontends."""

import pytest

from repro.cache.pipt import PiptL1Cache
from repro.cache.vipt import L1Timing, ViptL1Cache
from repro.mem.address import PageSize


class TestViptGeometry:
    def test_vipt_constraint_fixes_64_sets(self, timing_32kb):
        # Paper §I: 12-bit offset, 64B lines -> at most 64 sets; capacity
        # grows only through associativity.
        for size_kb, ways in [(32, 8), (64, 16), (128, 32)]:
            cache = ViptL1Cache(size_kb * 1024, timing_32kb)
            assert cache.store.num_sets == 64
            assert cache.ways == ways

    def test_too_small_rejected(self, timing_32kb):
        with pytest.raises(ValueError):
            ViptL1Cache(2048, timing_32kb)


class TestViptAccess:
    def test_all_ways_probed_every_access(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        result = cache.access(0x1000, 0x1000, PageSize.BASE_4KB)
        assert result.ways_probed == 8
        assert result.latency_cycles == 2
        assert not result.hit

    def test_hit_after_fill(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        cache.fill(0x9000, PageSize.BASE_4KB)
        result = cache.access(0x1000, 0x9000, PageSize.BASE_4KB)
        assert result.hit

    def test_latency_identical_for_all_page_sizes(self, timing_32kb):
        # Baseline VIPT cannot exploit superpages.
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        base = cache.access(0x1000, 0x1000, PageSize.BASE_4KB)
        superpage = cache.access(0x40000000, 0x200000, PageSize.SUPER_2MB)
        assert base.latency_cycles == superpage.latency_cycles

    def test_miss_detect_at_tag_path(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        result = cache.access(0x1000, 0x1000, PageSize.BASE_4KB)
        assert (result.miss_detect_cycles
                == timing_32kb.miss_detect_cycles())
        assert 1 <= result.miss_detect_cycles <= timing_32kb.base_hit_cycles


class TestViptCoherence:
    def test_coherence_probe_pays_full_associativity(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        cache.fill(0x9000, PageSize.BASE_4KB, dirty=True)
        result = cache.coherence_probe(0x9000)
        assert result.present and result.dirty
        assert result.ways_probed == 8

    def test_coherence_invalidation(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        cache.fill(0x9000, PageSize.BASE_4KB)
        result = cache.coherence_probe(0x9000, invalidate=True)
        assert result.invalidated
        assert not cache.coherence_probe(0x9000).present

    def test_probe_absent_line(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        assert not cache.coherence_probe(0x9000).present


class TestViptSweep:
    def test_sweep_virtual_range_evicts_lines(self, timing_32kb):
        cache = ViptL1Cache(32 * 1024, timing_32kb)
        for offset in range(0, 4096, 64):
            cache.fill(0x9000 + offset, PageSize.BASE_4KB)
        evicted = cache.sweep_virtual_range(
            0x1000, 4096, translate=lambda va: va - 0x1000 + 0x9000)
        assert evicted == 64
        assert cache.store.valid_lines() == 0


class TestPipt:
    def test_free_choice_of_ways(self):
        cache = PiptL1Cache(128 * 1024, ways=4, hit_cycles=3)
        assert cache.ways == 4
        assert cache.store.num_sets == 512   # beyond the VIPT limit

    def test_tlb_latency_serialized(self):
        cache = PiptL1Cache(32 * 1024, ways=4, hit_cycles=2, tlb_latency=2)
        result = cache.access(0x1000, 0x1000, PageSize.BASE_4KB)
        assert result.latency_cycles == 4
        # Miss detection waits for the serialized TLB plus the tag path.
        assert (result.miss_detect_cycles
                == 2 + cache.timing.miss_detect_cycles())

    def test_hit_after_fill(self):
        cache = PiptL1Cache(32 * 1024, ways=4, hit_cycles=2)
        cache.fill(0x9000, PageSize.BASE_4KB)
        assert cache.access(0x0, 0x9000, PageSize.BASE_4KB).hit

    def test_coherence_probe(self):
        cache = PiptL1Cache(32 * 1024, ways=4, hit_cycles=2)
        cache.fill(0x9000, PageSize.BASE_4KB, dirty=True)
        result = cache.coherence_probe(0x9000, invalidate=True)
        assert result.present and result.dirty and result.invalidated
        assert result.ways_probed == 4

    def test_sweep(self):
        cache = PiptL1Cache(32 * 1024, ways=4, hit_cycles=2)
        cache.fill(0x9000, PageSize.BASE_4KB)
        evicted = cache.sweep_virtual_range(
            0x9000, 64, translate=lambda va: va)
        assert evicted == 1
