"""Tests for the VIVT L1 comparator and its synonym handling."""

import pytest

from repro.cache.vivt import VivtL1Cache
from repro.mem.address import PageSize

#: two virtual aliases of one physical line (a synonym pair).
VA_A = 0x10_0000
VA_B = 0x55_0000
PA = 0x9_0040


def make_cache():
    return VivtL1Cache(32 * 1024, ways=4, hit_cycles=1)


class TestBasic:
    def test_unconstrained_geometry(self):
        cache = VivtL1Cache(128 * 1024, ways=4, hit_cycles=2)
        assert cache.store.num_sets == 512     # beyond the VIPT limit

    def test_hit_by_virtual_address_without_translation(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        result = cache.access(VA_A, PA, PageSize.BASE_4KB)
        assert result.hit
        assert result.latency_cycles == 1      # no TLB on the hit path

    def test_miss_for_unmapped(self):
        cache = make_cache()
        assert not cache.access(VA_A, PA, PageSize.BASE_4KB).hit


class TestSynonyms:
    def test_two_aliases_can_coexist(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        cache.fill(VA_B, PA, PageSize.BASE_4KB)
        assert cache.synonym_stats.synonym_installs == 1
        assert cache.access(VA_A, PA, PageSize.BASE_4KB).hit
        assert cache.access(VA_B, PA, PageSize.BASE_4KB).hit

    def test_store_invalidates_other_alias(self):
        """The synonym problem: a store through one alias must kill the
        other cached copy or a later load reads stale data."""
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        cache.fill(VA_B, PA, PageSize.BASE_4KB)
        result = cache.access(VA_A, PA, PageSize.BASE_4KB, is_write=True)
        assert result.hit
        assert result.ways_probed > cache.ways     # fixup cost charged
        assert cache.synonym_stats.synonym_fixups == 1
        assert not cache.access(VA_B, PA, PageSize.BASE_4KB).hit

    def test_store_without_aliases_is_cheap(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        result = cache.access(VA_A, PA, PageSize.BASE_4KB, is_write=True)
        assert result.ways_probed == cache.ways


class TestCoherence:
    def test_probe_finds_line_through_reverse_map(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB, dirty=True)
        result = cache.coherence_probe(PA)
        assert result.present and result.dirty

    def test_invalidating_probe_kills_all_aliases(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        cache.fill(VA_B, PA, PageSize.BASE_4KB)
        result = cache.coherence_probe(PA, invalidate=True)
        assert result.present
        assert not cache.access(VA_A, PA, PageSize.BASE_4KB).hit
        assert not cache.access(VA_B, PA, PageSize.BASE_4KB).hit

    def test_probe_cost_scales_with_alias_count(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        cache.fill(VA_B, PA, PageSize.BASE_4KB)
        result = cache.coherence_probe(PA)
        assert result.ways_probed == 2 * cache.ways

    def test_probe_absent_line(self):
        cache = make_cache()
        result = cache.coherence_probe(PA)
        assert not result.present


class TestFlush:
    def test_context_switch_flush_drops_everything(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        cache.fill(VA_B + 64, PA + 4096, PageSize.BASE_4KB)
        dropped = cache.flush()
        assert dropped == 2
        assert cache.store.valid_lines() == 0
        assert not cache.coherence_probe(PA).present

    def test_sweep_by_virtual_address(self):
        cache = make_cache()
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        evicted = cache.sweep_virtual_range(VA_A, 64, translate=lambda v: v)
        assert evicted == 1


class TestEvictionConsistency:
    def test_reverse_map_cleaned_on_conflict_eviction(self):
        cache = VivtL1Cache(32 * 1024, ways=1, hit_cycles=1)
        stride = cache.store.num_sets * 64
        cache.fill(VA_A, PA, PageSize.BASE_4KB)
        # Same set, different virtual line: evicts VA_A's line.
        conflict_va = VA_A + stride
        cache.fill(conflict_va, PA + 8192, PageSize.BASE_4KB)
        cache._drop_mapping(cache.store.line_address(VA_A))
        result = cache.coherence_probe(PA)
        assert not result.present or result.ways_probed >= cache.ways
