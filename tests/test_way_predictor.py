"""Tests for the MRU way predictor."""

import pytest

from repro.cache.way_predictor import MRUWayPredictor


class TestPrediction:
    def test_initial_prediction_is_way_zero(self):
        predictor = MRUWayPredictor(num_sets=64, ways=8)
        assert predictor.predict(0) == 0

    def test_predicts_most_recent_way(self):
        predictor = MRUWayPredictor(64, 8)
        predictor.record_outcome(5, actual_way=3, predicted_way=0)
        assert predictor.predict(5) == 3

    def test_per_set_state(self):
        predictor = MRUWayPredictor(64, 8)
        predictor.record_outcome(1, actual_way=7, predicted_way=0)
        assert predictor.predict(2) == 0

    def test_fill_trains_mru(self):
        predictor = MRUWayPredictor(64, 8)
        predictor.update_on_fill(9, 6)
        assert predictor.predict(9) == 6

    def test_candidate_restriction(self):
        """SEESAW hands the predictor its partition (paper §IV-B2)."""
        predictor = MRUWayPredictor(64, 8)
        predictor.update_on_fill(0, 1)       # MRU way 1, outside partition
        prediction = predictor.predict(0, candidates=[4, 5, 6, 7])
        assert prediction == 4
        assert predictor.stats.out_of_candidates == 1


class TestAccuracyStats:
    def test_correct_prediction_counted(self):
        predictor = MRUWayPredictor(64, 8)
        p = predictor.predict(0)
        assert predictor.record_outcome(0, actual_way=p, predicted_way=p)
        assert predictor.stats.accuracy == 1.0

    def test_miss_not_counted_correct(self):
        predictor = MRUWayPredictor(64, 8)
        p = predictor.predict(0)
        assert not predictor.record_outcome(0, actual_way=None,
                                            predicted_way=p)
        assert predictor.stats.correct == 0

    def test_mru_accuracy_high_for_repeated_access(self):
        predictor = MRUWayPredictor(64, 8)
        correct = 0
        for _ in range(100):
            p = predictor.predict(0)
            if predictor.record_outcome(0, actual_way=2, predicted_way=p):
                correct += 1
        assert correct >= 99   # only the first access mispredicts

    def test_mru_accuracy_poor_for_alternating_ways(self):
        """The pointer-chase pathology behind Fig. 15's WP slowdowns."""
        predictor = MRUWayPredictor(64, 8)
        correct = 0
        for i in range(100):
            actual = i % 8
            p = predictor.predict(0)
            if predictor.record_outcome(0, actual_way=actual,
                                        predicted_way=p):
                correct += 1
        # Only the very first access (default prediction 0, actual 0) can
        # be right; every subsequent prediction trails by one way.
        assert correct <= 1
